//! Analysis findings and their human / machine renderings.

use std::fmt;

/// How serious a finding is. Orders `Info < Warning < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational: worth knowing, not a defect (e.g. provably
    /// untestable faults, which real circuits legitimately contain).
    Info,
    /// Suspicious structure that usually indicates a modelling mistake
    /// (floating nets, unobservable logic, dead constants).
    Warning,
    /// The circuit is unusable as-is (combinational cycles, unconnected
    /// flip-flops).
    Error,
}

impl Severity {
    /// Lower-case name, stable for the JSON encoding.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One diagnostic: a severity, a stable machine-readable code, and a
/// human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Seriousness.
    pub severity: Severity,
    /// Stable kebab-case code identifying the finding type
    /// (e.g. `comb-cycle`, `floating-net`, `untestable-faults`).
    pub code: &'static str,
    /// Free-form description naming the nets involved.
    pub message: String,
}

/// One random-pattern-resistant fault site in the SCOAP hard-to-test
/// report: the net, the harder stuck polarity, and its measures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestabilityEntry {
    /// Net name.
    pub net: String,
    /// The stuck value whose detection this entry scores (0 or 1).
    pub stuck: bool,
    /// SCOAP `fault_difficulty`: controllability of the opposite value
    /// plus observability.
    pub difficulty: u32,
    /// SCOAP 0-controllability of the net.
    pub cc0: u32,
    /// SCOAP 1-controllability of the net.
    pub cc1: u32,
    /// SCOAP observability of the net.
    pub co: u32,
}

/// The result of [`crate::analyze`]: everything found, plus context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalysisReport {
    /// Circuit name.
    pub circuit: String,
    /// Total gate count (including inputs, constants and flip-flops).
    pub gates: usize,
    /// All findings, grouped by severity (errors first), stable order.
    pub findings: Vec<Finding>,
    /// SCOAP hard-to-test regions: the top fault sites by
    /// `fault_difficulty`, hardest first (empty for cyclic circuits).
    pub testability: Vec<TestabilityEntry>,
}

impl AnalysisReport {
    /// `true` if the report contains anything of [`Severity::Warning`] or
    /// worse — the condition under which `fbist check` exits non-zero.
    pub fn has_findings(&self) -> bool {
        self.findings
            .iter()
            .any(|f| f.severity >= Severity::Warning)
    }

    /// Number of findings at exactly `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == severity)
            .count()
    }

    /// Renders the report as line-oriented human-readable text.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("check {}: {} gates\n", self.circuit, self.gates));
        for f in &self.findings {
            out.push_str(&format!("{}: [{}] {}\n", f.severity, f.code, f.message));
        }
        if !self.testability.is_empty() {
            out.push_str("hardest fault sites (SCOAP difficulty):\n");
            for e in &self.testability {
                out.push_str(&format!(
                    "  {}/{} difficulty={} (cc0={} cc1={} co={})\n",
                    e.net, e.stuck as u8, e.difficulty, e.cc0, e.cc1, e.co
                ));
            }
        }
        out.push_str(&format!(
            "{} errors, {} warnings, {} infos\n",
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Info)
        ));
        out
    }

    /// Renders the report as stable machine-readable JSON: fixed key
    /// order, findings in report order, no trailing whitespace.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"circuit\":");
        json_string(&mut out, &self.circuit);
        out.push_str(&format!(",\"gates\":{}", self.gates));
        out.push_str(&format!(
            ",\"summary\":{{\"errors\":{},\"warnings\":{},\"infos\":{}}}",
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Info)
        ));
        out.push_str(",\"findings\":[");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"severity\":\"{}\",\"code\":\"{}\",\"message\":",
                f.severity, f.code
            ));
            json_string(&mut out, &f.message);
            out.push('}');
        }
        out.push_str("],\"testability\":{\"hard_nets\":[");
        for (i, e) in self.testability.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"net\":");
            json_string(&mut out, &e.net);
            out.push_str(&format!(
                ",\"stuck\":{},\"difficulty\":{},\"cc0\":{},\"cc1\":{},\"co\":{}}}",
                e.stuck as u8, e.difficulty, e.cc0, e.cc1, e.co
            ));
        }
        out.push_str("]}}");
        out
    }
}

/// Appends `s` as a JSON string literal with the mandatory escapes.
fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AnalysisReport {
        AnalysisReport {
            circuit: "c\"x".to_owned(),
            gates: 3,
            findings: vec![
                Finding {
                    severity: Severity::Error,
                    code: "comb-cycle",
                    message: "a -> b -> a".to_owned(),
                },
                Finding {
                    severity: Severity::Info,
                    code: "untestable-faults",
                    message: "1 of 10".to_owned(),
                },
            ],
            testability: vec![TestabilityEntry {
                net: "n1".to_owned(),
                stuck: false,
                difficulty: 7,
                cc0: 2,
                cc1: 4,
                co: 3,
            }],
        }
    }

    #[test]
    fn severity_ordering() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
    }

    #[test]
    fn has_findings_ignores_info() {
        let mut r = sample();
        assert!(r.has_findings());
        r.findings.remove(0);
        assert!(!r.has_findings());
    }

    #[test]
    fn json_is_stable_and_escaped() {
        let r = sample();
        let j = r.to_json();
        assert_eq!(
            j,
            "{\"circuit\":\"c\\\"x\",\"gates\":3,\
             \"summary\":{\"errors\":1,\"warnings\":0,\"infos\":1},\
             \"findings\":[\
             {\"severity\":\"error\",\"code\":\"comb-cycle\",\"message\":\"a -> b -> a\"},\
             {\"severity\":\"info\",\"code\":\"untestable-faults\",\"message\":\"1 of 10\"}],\
             \"testability\":{\"hard_nets\":[\
             {\"net\":\"n1\",\"stuck\":0,\"difficulty\":7,\"cc0\":2,\"cc1\":4,\"co\":3}]}}"
        );
    }

    #[test]
    fn text_rendering_counts() {
        let r = sample();
        let t = r.render_text();
        assert!(t.contains("1 errors, 0 warnings, 1 infos"), "{t}");
        assert!(t.contains("[comb-cycle]"), "{t}");
    }
}
