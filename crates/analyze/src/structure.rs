//! Structural diagnostics: observability, floating nets, dead logic.
//!
//! Everything here is purely topological (plus baseline constants), so it
//! stays meaningful even for circuits the implication engine cannot help
//! with. The observability analysis is conservative in the safe direction:
//! a gate marked unobservable provably has no sensitisable structural path
//! to any observation point, while an observable-marked gate merely *might*
//! have one.

use fbist_netlist::{GateId, GateKind, Netlist};

/// Structural facts shared by the report and the untestability pre-pass.
pub(crate) struct Structure {
    /// Per gate: `true` if the gate's output net has a structural path to
    /// an observation point (primary output or DFF `D` pin) that is not
    /// blocked by a constant side input at a controlling value.
    pub obs: Vec<bool>,
    /// Nets that drive nothing and are not primary outputs.
    pub floating: Vec<GateId>,
    /// Gates with fanout but no structural path to any observation point.
    pub unobservable: Vec<GateId>,
    /// Non-`CONST` gates whose output is a baseline constant — dead logic
    /// behind constant inputs.
    pub dead_constant: Vec<(GateId, bool)>,
}

impl Structure {
    /// Computes the structural facts. `order` must be a valid levelization
    /// of `netlist` and `consts` its baseline constants (both typically
    /// from [`crate::Implicator`]).
    pub fn compute(netlist: &Netlist, order: &[GateId], consts: Vec<Option<bool>>) -> Structure {
        let n = netlist.gate_count();
        let mut is_output = vec![false; n];
        for &o in netlist.outputs() {
            is_output[o.index()] = true;
        }

        // Observability: backward sweep from observation points. A pin is
        // *live* when its gate observes (or is a DFF, whose D value the
        // scan chain exposes) and no *sibling* pin is stuck at the gate's
        // controlling value — a controlling side input freezes the output,
        // so no fault effect can pass. The constant controlling pins
        // themselves stay live: a fault inside their cones can flip them
        // (all at once, if they share a driver) and unfreeze the gate.
        let mut obs = is_output.clone();
        for &id in order.iter().rev() {
            let g = netlist.gate(id);
            if g.kind().is_source() {
                continue;
            }
            if !obs[id.index()] && !g.kind().is_state() {
                continue;
            }
            let fanin = g.fanin();
            match g.kind().controlling_value() {
                None => {
                    for &d in fanin {
                        obs[d.index()] = true;
                    }
                }
                Some(c) => {
                    let mut any_ctrl = false;
                    for &d in fanin {
                        if consts[d.index()] == Some(c) {
                            any_ctrl = true;
                            // A constant controlling pin blocks its
                            // non-constant siblings, but the constant
                            // cones themselves must stay observable: the
                            // output unfreezes only if *every* controlling
                            // pin flips, and a fault able to do that (e.g.
                            // in a shared upstream driver) lies in each of
                            // those pins' cones.
                            obs[d.index()] = true;
                        }
                    }
                    if !any_ctrl {
                        for &d in fanin {
                            obs[d.index()] = true;
                        }
                    }
                }
            }
        }

        let fanouts = netlist.fanouts();
        let mut floating = Vec::new();
        let mut unobservable = Vec::new();
        let mut dead_constant = Vec::new();
        for (id, g) in netlist.iter() {
            let i = id.index();
            if fanouts[i].is_empty() && !is_output[i] {
                // A DFF with unused Q still observes its D pin through the
                // scan chain, so it is not dead weight.
                if g.kind() != GateKind::Dff {
                    floating.push(id);
                }
            } else if !obs[i] {
                unobservable.push(id);
            }
            if let Some(v) = consts[i] {
                if !g.kind().is_source() {
                    dead_constant.push((id, v));
                }
            }
        }

        Structure {
            obs,
            floating,
            unobservable,
            dead_constant,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::implication::Implicator;
    use fbist_netlist::bench;

    fn structure(src: &str) -> (Structure, Netlist) {
        let n = bench::parse(src).unwrap();
        let imp = Implicator::new(&n).unwrap();
        let order = n.levelize().unwrap();
        let s = Structure::compute(&n, &order, imp.baseline_constants());
        (s, n)
    }

    #[test]
    fn clean_circuit_has_no_findings() {
        let src = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n";
        let (s, n) = structure(src);
        assert!(s.floating.is_empty());
        assert!(s.unobservable.is_empty());
        assert!(s.dead_constant.is_empty());
        assert!(s.obs.iter().all(|&o| o));
        assert!(s.obs[n.find("a").unwrap().index()]);
    }

    #[test]
    fn floating_net_detected() {
        let src = "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\nz = BUFF(a)\n";
        let (s, n) = structure(src);
        assert_eq!(s.floating, vec![n.find("z").unwrap()]);
    }

    #[test]
    fn unused_input_is_floating() {
        let src = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NOT(a)\n";
        let (s, n) = structure(src);
        assert_eq!(s.floating, vec![n.find("b").unwrap()]);
    }

    #[test]
    fn constant_blocking_makes_cone_unobservable() {
        // z = CONST0 freezes w = AND(y, z); y only reaches the output
        // through w, so y (and its driver cone) is unobservable.
        let src = "INPUT(a)\nOUTPUT(w)\nz = CONST0()\ny = NOT(a)\nw = AND(y, z)\n";
        let (s, n) = structure(src);
        assert!(!s.obs[n.find("y").unwrap().index()]);
        assert!(!s.obs[n.find("a").unwrap().index()]);
        // the constant pin itself could still pass (all siblings free)
        assert!(s.obs[n.find("z").unwrap().index()]);
        assert!(s.unobservable.contains(&n.find("y").unwrap()));
        // w is constant 0 behind the constant input: dead logic
        assert_eq!(s.dead_constant, vec![(n.find("w").unwrap(), false)]);
    }

    #[test]
    fn dff_d_pin_counts_as_observation() {
        // y only feeds a DFF whose Q is unused: still observable via scan.
        let src = "INPUT(a)\nOUTPUT(a)\ny = NOT(a)\nq = DFF(y)\n";
        let (s, n) = structure(src);
        assert!(s.obs[n.find("y").unwrap().index()]);
        assert!(s.unobservable.is_empty());
        assert!(s.floating.is_empty());
    }

    #[test]
    fn shared_fanout_constant_cone_stays_observable() {
        // t1 and t2 are both constant controlling pins of h, but they
        // share the upstream driver s: the single fault s/1 flips both
        // at once and shows at h, so the whole constant cone must stay
        // observable even with >= 2 controlling pins.
        let src = "OUTPUT(h)\nc = CONST0()\ns = BUFF(c)\n\
                   t1 = BUFF(s)\nt2 = BUFF(s)\nh = AND(t1, t2)\n";
        let (s, n) = structure(src);
        for name in ["c", "s", "t1", "t2"] {
            assert!(s.obs[n.find(name).unwrap().index()], "{name} blocked");
        }
        assert!(s.unobservable.is_empty());
    }

    #[test]
    fn independent_constant_controlling_pins_stay_observable() {
        // Two controlling pins from *independent* constant cones: no
        // single fault unfreezes y, but observability is only an
        // over-approximation — both cones must still be marked live
        // (the excitation check handles the rest), and only the free
        // sibling a is blocked.
        let src = "INPUT(a)\nOUTPUT(y)\nc0 = CONST0()\nc1 = CONST0()\n\
                   b0 = BUFF(c0)\nb1 = BUFF(c1)\ny = AND(b0, b1, a)\n";
        let (s, n) = structure(src);
        for name in ["c0", "c1", "b0", "b1"] {
            assert!(s.obs[n.find(name).unwrap().index()], "{name} blocked");
        }
        assert!(!s.obs[n.find("a").unwrap().index()]);
    }

    #[test]
    fn xor_is_never_blocked_by_constants() {
        let src = "INPUT(a)\nOUTPUT(y)\nz = CONST1()\ny = XOR(a, z)\n";
        let (s, n) = structure(src);
        assert!(s.obs[n.find("a").unwrap().index()]);
        assert!(s.unobservable.is_empty());
    }
}
