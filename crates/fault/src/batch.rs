//! Cross-row batch planning: fill every simulation lane.
//!
//! The per-row Detection-Matrix build hands each triplet's `τ + 1`
//! expanded patterns to the fault simulator on their own, so every row
//! pays for full 64-lane blocks whether it fills them or not — at the
//! default `τ = 31` half of every block is dead, at `τ = 3` it is 94 %.
//! A [`BatchPlan`] removes that waste by concatenating the pattern
//! streams of many rows into *shared* blocks: each block carries up to
//! `64·W` consecutive patterns of the global stream (`W` is the plan's
//! SIMD width in words, see [`fbist_bits::SimdWidth`]), and a
//! [`LaneGroup`] records which lanes belong to which row. The good
//! circuit is then evaluated once per shared block and each fault's cone
//! is propagated once per shared block, cutting both counts by up to
//! `64·W / (τ + 1)` versus the per-row build.
//!
//! Detection attribution is exact: a row detects a fault iff *some* lane
//! of *some* of its groups differs at a primary output, which is precisely
//! the per-row criterion — so the batched matrix is bit-identical to the
//! per-row one (see [`FaultSimulator::detects_batch`]). The same argument
//! makes the result independent of `W`: a `W`-wide block is exactly `W`
//! consecutive 64-lane blocks evaluated together, lanes keep their flat
//! stream order, and detection ORs / first-detection minimums reduce in
//! that order.
//!
//! [`FaultSimulator::detects_batch`]: crate::FaultSimulator::detects_batch

use fbist_bits::{pack, SimWord, SIMD_WIDTHS};

/// One row's contiguous run of lanes within one shared block.
///
/// A row whose stream straddles a block boundary is split into several
/// groups in consecutive blocks; `start` locates each group's first
/// pattern within the row's own stream. Lane offsets and lengths are
/// *flat* lane indices in `0..64·W`, so they need `u16` (a `W = 8` block
/// has 512 lanes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneGroup {
    /// Row index in the batch.
    pub row: u32,
    /// Index of the group's first pattern within the row's stream.
    pub start: u32,
    /// First flat lane the group occupies in the block.
    pub lane_offset: u16,
    /// Number of lanes (= patterns) in the group.
    pub len: u16,
}

impl LaneGroup {
    /// The block lanes this group occupies, as a 64-bit mask. Only valid
    /// for groups of a width-1 plan; wider plans use
    /// [`mask_w`](Self::mask_w).
    #[inline]
    pub fn mask(&self) -> u64 {
        pack::lane_group_mask(self.lane_offset as usize, self.len as usize)
    }

    /// The flat block lanes this group occupies, as a width-`W` mask.
    #[inline]
    pub fn mask_w<const W: usize>(&self) -> SimWord<W> {
        pack::lane_group_mask_w(self.lane_offset as usize, self.len as usize)
    }
}

/// One shared block of the plan (up to `64·W` lanes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchBlock {
    /// The lane groups sharing the block, in ascending lane order (and
    /// therefore ascending row order — the stream is concatenated in row
    /// index order). Never empty.
    pub groups: Vec<LaneGroup>,
    /// Total occupied lanes (`≤ 64·W`; every block except possibly the
    /// last is full).
    pub lanes_used: usize,
}

/// The shared-block layout for a batch of rows.
///
/// Built from the row lengths and the SIMD width alone: lane assignment
/// is a pure function of `(row_lengths, width)`, so a plan computed once
/// can drive any number of simulations and any partition of its blocks
/// across workers. The width is carried by the plan, which is how the
/// batched fault-simulation engines know which monomorphised sweep to
/// dispatch to.
///
/// # Example
///
/// ```
/// use fbist_fault::BatchPlan;
///
/// // 20 rows of 6 patterns each (τ = 5): 120 lanes in 2 blocks instead
/// // of the 20 blocks the per-row build would evaluate.
/// let plan = BatchPlan::new(&[6; 20]);
/// assert_eq!(plan.block_count(), 2);
/// assert_eq!(plan.total_lanes(), 120);
/// assert!(plan.occupancy() > 0.9);
/// // one row straddles the block boundary and splits into two lane groups
/// let groups: usize = plan.blocks().iter().map(|b| b.groups.len()).sum();
/// assert_eq!(groups, 21);
/// // at width 2 (128-lane blocks) the same rows fit one block whole
/// let wide = BatchPlan::with_width(&[6; 20], 2);
/// assert_eq!(wide.block_count(), 1);
/// let groups: usize = wide.blocks().iter().map(|b| b.groups.len()).sum();
/// assert_eq!(groups, 20);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchPlan {
    blocks: Vec<BatchBlock>,
    rows: usize,
    total_lanes: usize,
    width_words: usize,
}

impl BatchPlan {
    /// Plans shared 64-lane (`W = 1`) blocks for rows of the given
    /// pattern-stream lengths — [`with_width`](Self::with_width) at the
    /// classic one-`u64` width.
    pub fn new(row_lengths: &[usize]) -> BatchPlan {
        BatchPlan::with_width(row_lengths, 1)
    }

    /// Plans shared `64·width_words`-lane blocks for rows of the given
    /// pattern-stream lengths, concatenating streams in row order.
    /// Zero-length rows occupy no lanes (they simply detect nothing).
    ///
    /// # Panics
    ///
    /// Panics if `width_words` is not one of `1, 2, 4, 8`, or if the
    /// total lane count overflows `usize` (callers building rows from
    /// `τ + 1`-pattern expansions are bounded long before this by
    /// `FlowConfig::MAX_TAU`, but the planner checks rather than wrapping
    /// silently in release builds).
    pub fn with_width(row_lengths: &[usize], width_words: usize) -> BatchPlan {
        assert!(
            SIMD_WIDTHS.contains(&width_words),
            "BatchPlan: unsupported SIMD width {width_words} (expected one of {SIMD_WIDTHS:?})"
        );
        let capacity = pack::BLOCK * width_words;
        let total_lanes: usize = row_lengths
            .iter()
            .try_fold(0usize, |acc, &len| acc.checked_add(len))
            .expect("BatchPlan: total lane count overflows usize");
        let mut blocks = Vec::with_capacity(total_lanes.div_ceil(capacity));
        let mut cur = BatchBlock {
            groups: Vec::new(),
            lanes_used: 0,
        };
        for (row, &len) in row_lengths.iter().enumerate() {
            let mut start = 0usize;
            while start < len {
                if cur.lanes_used == capacity {
                    blocks.push(std::mem::replace(
                        &mut cur,
                        BatchBlock {
                            groups: Vec::new(),
                            lanes_used: 0,
                        },
                    ));
                }
                let seg = (len - start).min(capacity - cur.lanes_used);
                cur.groups.push(LaneGroup {
                    row: row as u32,
                    start: start as u32,
                    lane_offset: cur.lanes_used as u16,
                    len: seg as u16,
                });
                cur.lanes_used += seg;
                start += seg;
            }
        }
        if cur.lanes_used > 0 {
            blocks.push(cur);
        }
        BatchPlan {
            blocks,
            rows: row_lengths.len(),
            total_lanes,
            width_words,
        }
    }

    /// The planned blocks, in global stream order.
    pub fn blocks(&self) -> &[BatchBlock] {
        &self.blocks
    }

    /// Number of planned blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Number of rows the plan covers (including zero-length ones).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Total occupied lanes across all blocks.
    pub fn total_lanes(&self) -> usize {
        self.total_lanes
    }

    /// The plan's SIMD width in `u64` words per block (`1`, `2`, `4` or
    /// `8`).
    pub fn width_words(&self) -> usize {
        self.width_words
    }

    /// Lane capacity of one block (`64 · width_words`).
    pub fn lane_capacity(&self) -> usize {
        pack::BLOCK * self.width_words
    }

    /// Occupied fraction of the planned lane capacity, in `[0, 1]` (1.0
    /// for an empty plan). Every block except possibly the last is full,
    /// so this approaches 1 as the batch grows — compare with the
    /// `(τ + 1) / 64` the per-row build is stuck at when `τ + 1 < 64`.
    pub fn occupancy(&self) -> f64 {
        if self.blocks.is_empty() {
            1.0
        } else {
            self.total_lanes as f64 / (self.blocks.len() * self.lane_capacity()) as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_concatenates_streams() {
        let plan = BatchPlan::new(&[4, 4, 4]);
        assert_eq!(plan.block_count(), 1);
        assert_eq!(plan.total_lanes(), 12);
        assert_eq!(plan.width_words(), 1);
        let b = &plan.blocks()[0];
        assert_eq!(b.lanes_used, 12);
        assert_eq!(b.groups.len(), 3);
        assert_eq!(b.groups[1].row, 1);
        assert_eq!(b.groups[1].lane_offset, 4);
        assert_eq!(b.groups[2].lane_offset, 8);
        assert_eq!(b.groups[1].mask(), 0b1111_0000);
    }

    #[test]
    fn straddling_rows_split_into_groups() {
        // 60 + 10: the second row spans the block boundary
        let plan = BatchPlan::new(&[60, 10]);
        assert_eq!(plan.block_count(), 2);
        let b0 = &plan.blocks()[0];
        let b1 = &plan.blocks()[1];
        assert_eq!(b0.groups.len(), 2);
        assert_eq!(
            b0.groups[1],
            LaneGroup {
                row: 1,
                start: 0,
                lane_offset: 60,
                len: 4
            }
        );
        assert_eq!(b1.groups.len(), 1);
        assert_eq!(
            b1.groups[0],
            LaneGroup {
                row: 1,
                start: 4,
                lane_offset: 0,
                len: 6
            }
        );
        assert_eq!(b1.lanes_used, 6);
    }

    #[test]
    fn long_rows_fill_whole_blocks() {
        let plan = BatchPlan::new(&[130]);
        assert_eq!(plan.block_count(), 3);
        assert_eq!(plan.blocks()[2].lanes_used, 2);
        let starts: Vec<u32> = plan
            .blocks()
            .iter()
            .flat_map(|b| b.groups.iter().map(|g| g.start))
            .collect();
        assert_eq!(starts, vec![0, 64, 128]);
    }

    #[test]
    fn wide_plan_is_narrow_plan_reblocked() {
        // the flat lane stream is identical at every width: group (row,
        // start, len) runs agree once narrow blocks are re-chunked
        let lengths = [0usize, 4, 1, 60, 130, 7, 0, 64, 33];
        let narrow = BatchPlan::new(&lengths);
        for &w in &[2usize, 4, 8] {
            let wide = BatchPlan::with_width(&lengths, w);
            assert_eq!(wide.width_words(), w);
            assert_eq!(wide.total_lanes(), narrow.total_lanes());
            assert_eq!(
                wide.block_count(),
                narrow.total_lanes().div_ceil(64 * w),
                "width {w}"
            );
            // every pattern lands at flat stream position start-of-block
            // + lane_offset, matching the narrow plan's stream order
            let mut stream_pos = 0usize;
            for block in wide.blocks() {
                for g in &block.groups {
                    assert_eq!(g.lane_offset as usize, stream_pos % (64 * w));
                    stream_pos += g.len as usize;
                }
            }
            assert_eq!(stream_pos, narrow.total_lanes());
        }
    }

    #[test]
    fn wide_groups_exceed_u8_lane_offsets() {
        // a W=8 block has 512 lanes; offsets past 255 must survive intact
        let plan = BatchPlan::with_width(&[300, 212], 8);
        assert_eq!(plan.block_count(), 1);
        let b = &plan.blocks()[0];
        assert_eq!(b.lanes_used, 512);
        assert_eq!(b.groups[1].lane_offset, 300);
        assert_eq!(b.groups[1].len, 212);
        let m = b.groups[1].mask_w::<8>();
        assert_eq!(m.count_ones(), 212);
        assert_eq!(m.trailing_zeros(), 300);
    }

    #[test]
    #[should_panic(expected = "unsupported SIMD width")]
    fn bogus_width_rejected() {
        let _ = BatchPlan::with_width(&[4; 4], 3);
    }

    #[test]
    fn zero_length_rows_are_skipped_but_counted() {
        let plan = BatchPlan::new(&[0, 3, 0]);
        assert_eq!(plan.rows(), 3);
        assert_eq!(plan.block_count(), 1);
        assert_eq!(plan.blocks()[0].groups.len(), 1);
        assert_eq!(plan.blocks()[0].groups[0].row, 1);
    }

    #[test]
    fn empty_plan() {
        let plan = BatchPlan::new(&[]);
        assert_eq!(plan.block_count(), 0);
        assert_eq!(plan.occupancy(), 1.0);
    }

    #[test]
    fn occupancy_improves_on_per_row() {
        // per-row at τ = 3: 4/64 = 6.25 %; batched with 32 rows: 100 %
        let plan = BatchPlan::new(&[4; 32]);
        assert_eq!(plan.block_count(), 2);
        assert_eq!(plan.occupancy(), 1.0);
        // and a width-2 plan fits them in one 128-lane block
        let wide = BatchPlan::with_width(&[4; 32], 2);
        assert_eq!(wide.block_count(), 1);
        assert_eq!(wide.occupancy(), 1.0);
    }
}
