//! Naive single-pattern fault simulation, used as a correctness oracle.
//!
//! This module re-implements fault detection in the most direct way
//! possible — full circuit re-evaluation per (fault, pattern) pair with
//! scalar booleans — so the optimised event-driven simulator in
//! [`crate::FaultSimulator`] has an independent reference to be checked
//! against in tests and benchmarks. Do not use it for real workloads; it is
//! orders of magnitude slower by design.

use fbist_bits::BitVec;
use fbist_netlist::{GateId, GateKind, Netlist};

use crate::model::{Fault, FaultSite};

/// Evaluates every net of a combinational netlist for one pattern, with an
/// optional fault injected. Returns per-net boolean values.
///
/// # Panics
///
/// Panics if the netlist is sequential/invalid or the pattern width is
/// wrong.
pub fn evaluate(netlist: &Netlist, pattern: &BitVec, fault: Option<Fault>) -> Vec<bool> {
    assert!(
        netlist.is_combinational(),
        "reference sim is combinational-only"
    );
    assert_eq!(pattern.width(), netlist.inputs().len(), "pattern width");
    let order = netlist.levelize().expect("valid netlist");
    let mut values = vec![false; netlist.gate_count()];
    for (k, &pi) in netlist.inputs().iter().enumerate() {
        values[pi.index()] = pattern.get(k);
    }
    // apply output fault on a primary input immediately
    if let Some(f) = fault {
        if let FaultSite::GateOutput(g) = f.site() {
            if netlist.gate(g).kind() == GateKind::Input {
                values[g.index()] = f.stuck_value();
            }
        }
    }
    for &id in &order {
        let g = netlist.gate(id);
        if g.kind() == GateKind::Input {
            continue;
        }
        let read = |pin: usize, fid: GateId| -> bool {
            if let Some(f) = fault {
                if let FaultSite::GateInput { gate, pin: fpin } = f.site() {
                    if gate == id && fpin as usize == pin {
                        return f.stuck_value();
                    }
                }
            }
            values[fid.index()]
        };
        let fanin_vals: Vec<bool> = g
            .fanin()
            .iter()
            .enumerate()
            .map(|(p, &f)| read(p, f))
            .collect();
        let mut v = match g.kind() {
            GateKind::And => fanin_vals.iter().all(|&b| b),
            GateKind::Nand => !fanin_vals.iter().all(|&b| b),
            GateKind::Or => fanin_vals.iter().any(|&b| b),
            GateKind::Nor => !fanin_vals.iter().any(|&b| b),
            GateKind::Xor => fanin_vals.iter().filter(|&&b| b).count() % 2 == 1,
            GateKind::Xnor => fanin_vals.iter().filter(|&&b| b).count() % 2 == 0,
            GateKind::Not => !fanin_vals[0],
            GateKind::Buff => fanin_vals[0],
            GateKind::Const0 => false,
            GateKind::Const1 => true,
            GateKind::Input | GateKind::Dff => unreachable!(),
        };
        if let Some(f) = fault {
            if f.site() == FaultSite::GateOutput(id) {
                v = f.stuck_value();
            }
        }
        values[id.index()] = v;
    }
    values
}

/// `true` iff `pattern` detects `fault` (some primary output differs
/// between the good and the faulty circuit).
///
/// # Example
///
/// ```
/// use fbist_netlist::embedded;
/// use fbist_fault::{Fault, FaultSite, reference};
/// use fbist_bits::BitVec;
///
/// let c17 = embedded::c17();
/// let g = c17.find("22").unwrap();
/// let f = Fault::stuck_at(FaultSite::GateOutput(g), false);
/// // all-zero inputs drive 22 to 0, so stuck-at-0 there is NOT detected
/// assert!(!reference::naive_detects(&c17, f, &BitVec::zeros(5)));
/// ```
pub fn naive_detects(netlist: &Netlist, fault: Fault, pattern: &BitVec) -> bool {
    let good = evaluate(netlist, pattern, None);
    let bad = evaluate(netlist, pattern, Some(fault));
    netlist
        .outputs()
        .iter()
        .any(|o| good[o.index()] != bad[o.index()])
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbist_netlist::bench;

    #[test]
    fn good_evaluation_matches_truth_table() {
        let src = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n";
        let n = bench::parse(src).unwrap();
        for v in 0u64..4 {
            let p = BitVec::from_u64(2, v);
            let vals = evaluate(&n, &p, None);
            let y = n.find("y").unwrap();
            assert_eq!(vals[y.index()], v == 3);
        }
    }

    #[test]
    fn output_fault_on_pi() {
        let src = "INPUT(a)\nOUTPUT(y)\ny = BUFF(a)\n";
        let n = bench::parse(src).unwrap();
        let f = Fault::stuck_at(FaultSite::GateOutput(n.find("a").unwrap()), true);
        assert!(naive_detects(&n, f, &BitVec::zeros(1)));
        assert!(!naive_detects(&n, f, &BitVec::ones(1)));
    }

    #[test]
    fn input_pin_fault_localized() {
        let src = "INPUT(a)\nOUTPUT(x)\nOUTPUT(y)\nx = NOT(a)\ny = BUFF(a)\n";
        let n = bench::parse(src).unwrap();
        let x = n.find("x").unwrap();
        let f = Fault::stuck_at(FaultSite::GateInput { gate: x, pin: 0 }, true);
        // a=0: pin forced 1 -> x=0 (good x=1): detected via x, y unaffected
        let p = BitVec::zeros(1);
        let good = evaluate(&n, &p, None);
        let bad = evaluate(&n, &p, Some(f));
        assert_ne!(good[x.index()], bad[x.index()]);
        let y = n.find("y").unwrap();
        assert_eq!(good[y.index()], bad[y.index()]);
    }
}
