//! Structural equivalence collapsing of stuck-at faults.
//!
//! Two faults are *equivalent* when every test detecting one detects the
//! other — they are indistinguishable and only one representative needs to
//! be targeted. The classical local rules used here:
//!
//! * AND: any input stuck-at-0 ≡ output stuck-at-0
//! * NAND: any input stuck-at-0 ≡ output stuck-at-1
//! * OR: any input stuck-at-1 ≡ output stuck-at-1
//! * NOR: any input stuck-at-1 ≡ output stuck-at-0
//! * NOT: input s-a-v ≡ output s-a-v̄;  BUFF: input s-a-v ≡ output s-a-v
//! * a fanout-free net: stem s-a-v ≡ its single branch s-a-v
//!
//! The rules are closed under union-find, giving the standard ~40–60 %
//! reduction of the full universe.

// determinism: the maps in this module are keyed lookups only — their
// iteration order is never observed, so hash randomization cannot leak
// into results.
use std::collections::HashMap;

use fbist_netlist::{GateKind, Netlist};

use crate::model::{Fault, FaultId, FaultList, FaultSite};

/// Result of [`collapse`]: the representative faults plus bookkeeping.
#[derive(Debug, Clone)]
pub struct CollapseResult {
    /// One representative fault per equivalence class, in stable order.
    pub representatives: FaultList,
    /// For each fault of the input list, the index (into
    /// `representatives`) of its class representative.
    pub class_of: Vec<usize>,
    /// Number of faults in the input list.
    pub original_len: usize,
}

impl CollapseResult {
    /// Collapse ratio: `representatives.len() / original_len`.
    pub fn ratio(&self) -> f64 {
        if self.original_len == 0 {
            1.0
        } else {
            self.representatives.len() as f64 / self.original_len as f64
        }
    }
}

struct UnionFind {
    parent: Vec<u32>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
        }
    }

    fn find(&mut self, x: u32) -> u32 {
        let mut root = x;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        // path compression
        let mut cur = x;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }

    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // keep the smaller index as root for deterministic output
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[hi as usize] = lo;
        }
    }
}

/// Collapses a fault list by structural equivalence.
///
/// The input list is typically [`FaultList::full`]; faults absent from the
/// list simply do not participate.
pub fn collapse(netlist: &Netlist, faults: &FaultList) -> CollapseResult {
    // determinism: queried via `index.get` only, never iterated.
    let index: HashMap<Fault, u32> = faults.iter().map(|(id, f)| (f, id.0)).collect();
    let mut uf = UnionFind::new(faults.len());
    let lookup = |site: FaultSite, v: bool| index.get(&Fault::stuck_at(site, v)).copied();

    // Gate-local rules.
    for (gid, g) in netlist.iter() {
        let kind = g.kind();
        let (in_v, out_v) = match kind {
            GateKind::And => (false, false),
            GateKind::Nand => (false, true),
            GateKind::Or => (true, true),
            GateKind::Nor => (true, false),
            GateKind::Not | GateKind::Buff => {
                // handle both polarities below
                for v in [false, true] {
                    let ov = if kind == GateKind::Not { !v } else { v };
                    if let (Some(a), Some(b)) = (
                        lookup(FaultSite::GateInput { gate: gid, pin: 0 }, v),
                        lookup(FaultSite::GateOutput(gid), ov),
                    ) {
                        uf.union(a, b);
                    }
                }
                continue;
            }
            _ => continue,
        };
        if let Some(out) = lookup(FaultSite::GateOutput(gid), out_v) {
            for pin in 0..g.fanin().len() as u32 {
                if let Some(inp) = lookup(FaultSite::GateInput { gate: gid, pin }, in_v) {
                    uf.union(inp, out);
                }
            }
        }
    }

    // Fanout-free stems: stem fault ≡ its unique branch fault. A stem
    // that is also a primary output is excluded: it is observed directly,
    // so a test may detect the stem fault at the output without the
    // effect ever passing through the branch's gate — the test sets are
    // not equal and the faults must stay in separate classes.
    let mut is_output = vec![false; netlist.gate_count()];
    for &o in netlist.outputs() {
        is_output[o.index()] = true;
    }
    let fanouts = netlist.fanouts();
    for (net, sinks) in fanouts.iter().enumerate() {
        if is_output[net] {
            continue;
        }
        // count pins fed by this net (a gate may consume it on two pins)
        let mut pins = Vec::new();
        for &sink in sinks {
            for (pin, &f) in netlist.gate(sink).fanin().iter().enumerate() {
                if f.index() == net {
                    pins.push((sink, pin as u32));
                }
            }
        }
        if pins.len() == 1 {
            let (gate, pin) = pins[0];
            for v in [false, true] {
                if let (Some(stem), Some(branch)) = (
                    lookup(
                        FaultSite::GateOutput(fbist_netlist::GateId::from_index(net)),
                        v,
                    ),
                    lookup(FaultSite::GateInput { gate, pin }, v),
                ) {
                    uf.union(stem, branch);
                }
            }
        }
    }

    // Extract representatives in stable (root-id) order.
    // determinism: `entry()` lookups keyed by union-find root; the
    // representative order is driven by the stable `faults.iter()` scan.
    let mut rep_index: HashMap<u32, usize> = HashMap::new();
    let mut reps = Vec::new();
    let mut class_of = vec![0usize; faults.len()];
    for (id, f) in faults.iter() {
        let root = uf.find(id.0);
        let entry = rep_index.entry(root).or_insert_with(|| {
            reps.push(faults.get(FaultId(root)));
            reps.len() - 1
        });
        class_of[id.index()] = *entry;
        let _ = f;
    }

    CollapseResult {
        representatives: FaultList::from_faults(reps),
        class_of,
        original_len: faults.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbist_netlist::{bench, embedded};

    #[test]
    fn c17_collapse_count() {
        // Well-known result: c17's full universe collapses substantially.
        let n = embedded::c17();
        let full = FaultList::full(&n);
        let r = collapse(&n, &full);
        assert!(r.representatives.len() < full.len());
        // standard equivalence-collapsed size for c17 (output faults +
        // branch faults that are not equivalent): 22..34 depending on pin
        // conventions; ours keeps both polarities at 11 stems (22) plus
        // NAND input sa-1 pins (12) minus fanout-free merges.
        assert!(r.representatives.len() >= 22, "{}", r.representatives.len());
        assert!(r.ratio() < 1.0);
        assert_eq!(r.class_of.len(), full.len());
    }

    #[test]
    fn inverter_chain_collapses_to_two_classes() {
        // a -> NOT b -> NOT c -> y(out). All faults on a fanout-free
        // inverter chain collapse to exactly 2 classes.
        let src = "INPUT(a)\nOUTPUT(c)\nb = NOT(a)\nc = NOT(b)\n";
        let n = bench::parse(src).unwrap();
        let full = FaultList::full(&n);
        let r = collapse(&n, &full);
        assert_eq!(r.representatives.len(), 2, "{:?}", r.representatives);
    }

    #[test]
    fn and_gate_rules() {
        let src = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n";
        let n = bench::parse(src).unwrap();
        let full = FaultList::full(&n);
        let r = collapse(&n, &full);
        // Full: 3 stems * 2 + 2 pins * 2 = 10 faults.
        // Equivalences: a/0 ≡ pin0/0 (fanout-free), b/0 ≡ pin1/0,
        //   pin0/0 ≡ y/0, pin1/0 ≡ y/0; a/1 ≡ pin0/1; b/1 ≡ pin1/1.
        // Classes: {a0,b0,p00,p10,y0}, {a1,p01}, {b1,p11}, {y1} => 4.
        assert_eq!(r.representatives.len(), 4);
    }

    #[test]
    fn xor_has_no_local_equivalence() {
        let src = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = XOR(a, b)\n";
        let n = bench::parse(src).unwrap();
        let full = FaultList::full(&n);
        let r = collapse(&n, &full);
        // Only fanout-free merges apply: a/v ≡ pin0/v, b/v ≡ pin1/v.
        // Classes: {a0,p00},{a1,p01},{b0,p10},{b1,p11},{y0},{y1} => 6.
        assert_eq!(r.representatives.len(), 6);
    }

    #[test]
    fn fanout_stems_not_merged() {
        // a feeds two gates: stem faults on a stay distinct from branches.
        let src = "INPUT(a)\nOUTPUT(x)\nOUTPUT(y)\nx = NOT(a)\ny = BUFF(a)\n";
        let n = bench::parse(src).unwrap();
        let full = FaultList::full(&n);
        let r = collapse(&n, &full);
        // stems a/0, a/1 remain their own classes (fanout = 2)
        // x pin0/v ≡ x/!v; y pin0/v ≡ y/v → classes:
        // {a0},{a1},{p_x0, x1},{p_x1, x0},{p_y0, y0},{p_y1, y1} => 6
        assert_eq!(r.representatives.len(), 6);
    }

    #[test]
    fn output_stem_with_one_branch_is_not_merged() {
        // x is a primary output AND feeds y on one pin. A test for x/0
        // can observe x directly, while the branch fault x->y.0/0 needs
        // propagation through y (blocked whenever b = 0): the test sets
        // differ, so the old fanout-free merge here was wrong.
        let src = "INPUT(a)\nINPUT(b)\nOUTPUT(x)\nOUTPUT(y)\nx = NOT(a)\ny = AND(x, b)\n";
        let n = bench::parse(src).unwrap();
        let full = FaultList::full(&n);
        let r = collapse(&n, &full);
        let x = n.find("x").unwrap();
        let y = n.find("y").unwrap();
        let stem = full
            .position(&Fault::stuck_at(FaultSite::GateOutput(x), false))
            .unwrap();
        let branch = full
            .position(&Fault::stuck_at(
                FaultSite::GateInput { gate: y, pin: 0 },
                false,
            ))
            .unwrap();
        assert_ne!(
            r.class_of[stem.index()],
            r.class_of[branch.index()],
            "PO stem must not collapse with its branch"
        );
    }

    #[test]
    fn class_of_maps_to_representative() {
        let n = embedded::c17();
        let full = FaultList::full(&n);
        let r = collapse(&n, &full);
        for (id, _f) in full.iter() {
            let rep = r.class_of[id.index()];
            assert!(rep < r.representatives.len());
        }
        // every representative maps to itself
        for (i, rep) in r.representatives.iter() {
            let orig = full.position(&rep).unwrap();
            assert_eq!(r.class_of[orig.index()], i.index());
        }
    }
}
