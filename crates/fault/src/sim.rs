//! Bit-parallel, event-driven single-fault-propagation simulator.

use std::ops::Range;

use fbist_bits::{pack, BitMatrix, BitVec, SimWord, SIMD_WIDTHS};
use fbist_netlist::{CsrAdjacency, GateId, GateKind, Netlist};
use fbist_sim::{PackedSimulator, SimError};

use crate::batch::BatchPlan;
use crate::model::{Fault, FaultList, FaultSite};

/// Outcome of a fault-simulation run over an ordered pattern set.
#[derive(Debug, Clone)]
pub struct FaultSimResult {
    /// `detected.get(i)` — whether fault `i` of the list was detected.
    pub detected: BitVec,
    /// For each fault, the index of the first pattern that detects it.
    pub first_detection: Vec<Option<u32>>,
    /// Number of faults in the target list.
    pub total_faults: usize,
}

impl FaultSimResult {
    /// Number of detected faults.
    pub fn detected_count(&self) -> usize {
        self.detected.count_ones()
    }

    /// Fault coverage in `[0, 1]`.
    pub fn coverage(&self) -> f64 {
        if self.total_faults == 0 {
            1.0
        } else {
            self.detected_count() as f64 / self.total_faults as f64
        }
    }

    /// Index one past the last pattern that *first*-detects some fault —
    /// i.e. the length the pattern set can be trimmed to without losing
    /// coverage. Returns 0 if nothing is detected.
    ///
    /// This is exactly the per-triplet test-length trimming rule of the
    /// paper's Section 4 ("deleting from each test set the last subsequence
    /// of patterns not contributing to the fault coverage").
    pub fn useful_prefix_len(&self) -> usize {
        self.first_detection
            .iter()
            .flatten()
            .map(|&p| p as usize + 1)
            .max()
            .unwrap_or(0)
    }
}

/// Bit-parallel stuck-at fault simulator.
///
/// For every block of 64 patterns the good circuit is simulated once; each
/// fault is then *injected* and its effect propagated event-wise through
/// its fanout cone only, in topological order, stopping as soon as the
/// faulty values reconverge with the good ones. Detection is the lane-wise
/// XOR at the primary outputs.
///
/// # Example
///
/// ```
/// use fbist_netlist::embedded;
/// use fbist_fault::{FaultList, FaultSimulator};
/// use fbist_bits::BitVec;
///
/// let sim = FaultSimulator::new(&embedded::c17())?;
/// let faults = FaultList::collapsed(sim.netlist());
/// let res = sim.run(&[BitVec::ones(5)], &faults);
/// assert!(res.coverage() > 0.0);
/// # Ok::<(), fbist_sim::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FaultSimulator {
    sim: PackedSimulator,
    rank: Vec<u32>,
    /// Flat fanout/fanin adjacency and per-gate kinds: the propagation
    /// sweep's whole working set in contiguous arrays, instead of
    /// pointer-chasing through `Gate` structs (heap `Vec` + name `String`
    /// per gate).
    fo: CsrAdjacency,
    fi: CsrAdjacency,
    kinds: Vec<GateKind>,
    is_po: Vec<bool>,
}

/// Per-run scratch space, reused across faults and blocks; generic over
/// the SIMD width `W` of the faulty-value words.
///
/// The event queue is a bitset over topological *ranks*: enqueueing a gate
/// sets the bit of its rank, and the sweep pops bits in ascending rank
/// order with word scans. Ranks are unique, so this visits gates in
/// exactly the order a rank-keyed priority queue would — without any heap
/// traffic. Every bit is cleared as it is popped, so the bitset is empty
/// again when a propagation finishes and needs no per-fault reset.
struct Scratch<const W: usize> {
    faulty: Vec<SimWord<W>>,
    stamp: Vec<u32>,
    epoch: u32,
    touched: Vec<u32>,
    pending: Vec<u64>,
}

impl<const W: usize> Scratch<W> {
    fn new(n: usize) -> Scratch<W> {
        Scratch {
            faulty: vec![SimWord::ZERO; n],
            stamp: vec![0; n],
            epoch: 0,
            touched: Vec::new(),
            pending: vec![0; n.div_ceil(64)],
        }
    }

    fn next_epoch(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.stamp.fill(0);
            self.epoch = 1;
        }
        self.touched.clear();
    }
}

impl FaultSimulator {
    /// Builds a fault simulator for a combinational netlist.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::SequentialNetlist`] for sequential netlists
    /// (apply [`fbist_netlist::full_scan`] first) and [`SimError::Netlist`]
    /// for invalid ones.
    pub fn new(netlist: &Netlist) -> Result<Self, SimError> {
        let sim = PackedSimulator::new(netlist)?;
        let mut rank = vec![0u32; netlist.gate_count()];
        for (i, &g) in sim.order().iter().enumerate() {
            rank[g.index()] = i as u32;
        }
        let mut is_po = vec![false; netlist.gate_count()];
        for &o in netlist.outputs() {
            is_po[o.index()] = true;
        }
        Ok(FaultSimulator {
            sim,
            rank,
            fo: netlist.fanouts_csr(),
            fi: netlist.fanins_csr(),
            kinds: netlist.kinds(),
            is_po,
        })
    }

    /// Gate `i`'s fanouts (CSR slice).
    #[inline]
    fn fanouts_of(&self, i: usize) -> &[GateId] {
        self.fo.of(i)
    }

    /// Gate `i`'s fanins (CSR slice).
    #[inline]
    fn fanins_of(&self, i: usize) -> &[GateId] {
        self.fi.of(i)
    }

    /// The simulated netlist.
    pub fn netlist(&self) -> &Netlist {
        self.sim.netlist()
    }

    /// The underlying good-circuit simulator.
    pub fn good_simulator(&self) -> &PackedSimulator {
        &self.sim
    }

    /// Simulates the pattern set against the fault list **with fault
    /// dropping**, returning one bit per fault: detected or not.
    ///
    /// # Panics
    ///
    /// Panics if a pattern's width differs from the input count.
    pub fn detects(&self, patterns: &[BitVec], faults: &FaultList) -> BitVec {
        self.run(patterns, faults).detected
    }

    /// [`detects`](Self::detects) at an explicit SIMD width (`1`, `2`,
    /// `4` or `8` words per block) — bit-identical at every width.
    ///
    /// # Panics
    ///
    /// Panics if `width_words` is unsupported or a pattern's width
    /// differs from the input count.
    pub fn detects_wide(
        &self,
        patterns: &[BitVec],
        faults: &FaultList,
        width_words: usize,
    ) -> BitVec {
        self.run_wide(patterns, faults, width_words).detected
    }

    /// Simulates the pattern set against the fault list with dropping,
    /// recording each fault's first detecting pattern.
    ///
    /// # Panics
    ///
    /// Panics if a pattern's width differs from the input count.
    pub fn run(&self, patterns: &[BitVec], faults: &FaultList) -> FaultSimResult {
        self.run_wide(patterns, faults, 1)
    }

    /// [`run`](Self::run) at an explicit SIMD width. Pattern lanes keep
    /// their flat stream order inside each `64·W`-lane block, so the
    /// detected set *and* every first-detection index are byte-identical
    /// at every width.
    ///
    /// # Panics
    ///
    /// Panics if `width_words` is unsupported or a pattern's width
    /// differs from the input count.
    pub fn run_wide(
        &self,
        patterns: &[BitVec],
        faults: &FaultList,
        width_words: usize,
    ) -> FaultSimResult {
        match width_words {
            1 => self.run_w::<1>(patterns, faults),
            2 => self.run_w::<2>(patterns, faults),
            4 => self.run_w::<4>(patterns, faults),
            8 => self.run_w::<8>(patterns, faults),
            w => panic!("unsupported SIMD width {w} (expected one of {SIMD_WIDTHS:?})"),
        }
    }

    fn run_w<const W: usize>(&self, patterns: &[BitVec], faults: &FaultList) -> FaultSimResult {
        let n = self.netlist().gate_count();
        let lanes = SimWord::<W>::LANES;
        let mut good = vec![SimWord::<W>::ZERO; n];
        let mut scratch = Scratch::<W>::new(n);
        let mut detected = BitVec::zeros(faults.len());
        let mut first_detection = vec![None; faults.len()];
        let mut remaining = faults.len();

        for (block_idx, chunk) in patterns.chunks(lanes).enumerate() {
            if remaining == 0 {
                break;
            }
            let base = (block_idx * lanes) as u32;
            let pi_words = pack::pack_patterns_w::<W>(self.sim.input_count(), chunk);
            self.sim.eval_block_into_w(&pi_words, &mut good);
            self.sim.record_occupancy_wide(chunk.len(), lanes);
            let lane_mask = pack::lane_mask_w::<W>(chunk.len());
            for (fid, fault) in faults.iter() {
                if detected.get(fid.index()) {
                    continue;
                }
                let det = self.propagate(&good, fault, &mut scratch) & lane_mask;
                if !det.is_zero() {
                    detected.set(fid.index(), true);
                    first_detection[fid.index()] = Some(base + det.trailing_zeros());
                    remaining -= 1;
                }
            }
        }
        FaultSimResult {
            detected,
            first_detection,
            total_faults: faults.len(),
        }
    }

    /// Cross-row batched fault simulation: simulates many rows' pattern
    /// streams through shared 64-lane blocks (see [`BatchPlan`]) and
    /// returns, per row, the set of detected faults.
    ///
    /// The good circuit is evaluated once per *shared* block and every
    /// fault's cone is propagated once per shared block — against the
    /// per-row [`detects`](Self::detects) loop this cuts both counts by
    /// up to `64 / (τ + 1)` while producing **bit-identical rows**:
    /// `detects_batch(rows, f)[i] == detects(&rows[i], f)` for every `i`.
    /// Detection of a row is the OR of its lanes' primary-output
    /// differences, which does not depend on which block a lane lives in.
    ///
    /// # Panics
    ///
    /// Panics if a pattern's width differs from the input count.
    pub fn detects_batch(&self, rows: &[Vec<BitVec>], faults: &FaultList) -> Vec<BitVec> {
        self.detects_batch_wide(rows, faults, 1)
    }

    /// [`detects_batch`](Self::detects_batch) over shared blocks of an
    /// explicit SIMD width — bit-identical rows at every width.
    ///
    /// # Panics
    ///
    /// Panics if `width_words` is unsupported or a pattern's width
    /// differs from the input count.
    pub fn detects_batch_wide(
        &self,
        rows: &[Vec<BitVec>],
        faults: &FaultList,
        width_words: usize,
    ) -> Vec<BitVec> {
        let lengths: Vec<usize> = rows.iter().map(|r| r.len()).collect();
        let plan = BatchPlan::with_width(&lengths, width_words);
        let mut out = vec![BitVec::zeros(faults.len()); rows.len()];
        for (row, bits) in self.detects_blocks(&plan, 0..plan.block_count(), rows, faults) {
            out[row].union_with(&bits);
        }
        out
    }

    /// Simulates a consecutive range of a [`BatchPlan`]'s blocks and
    /// returns `(row, detected)` partials for the rows whose lane groups
    /// appear in the range. Rows straddling the range boundary come back
    /// partial; OR the partials of all ranges to recover
    /// [`detects_batch`](Self::detects_batch) — any partition of the
    /// block axis yields the same union, which is what lets callers fan
    /// ranges out across a worker pool.
    ///
    /// Within the range, *masked dropping* is applied: once every row
    /// with lanes in a later block has already detected a fault inside
    /// this range, the fault's propagation is skipped for that block.
    /// Dropping can never change a row's detected set — detection is a
    /// monotone OR over lanes, so skipping lanes that can only re-detect
    /// an already-detected `(row, fault)` pair removes redundant work
    /// only (the same argument that makes per-row fault dropping exact).
    ///
    /// # Panics
    ///
    /// Panics if `range` is out of bounds for the plan, a row referenced
    /// by the plan is missing from `rows`, or a pattern's width differs
    /// from the input count.
    pub fn detects_blocks(
        &self,
        plan: &BatchPlan,
        range: Range<usize>,
        rows: &[Vec<BitVec>],
        faults: &FaultList,
    ) -> Vec<(usize, BitVec)> {
        self.blocks_sweep(
            plan,
            range,
            rows,
            faults,
            || BitVec::zeros(faults.len()),
            |partial, fi| !partial.get(fi),
            |partial, fi, _first_idx| partial.set(fi, true),
        )
    }

    /// The shared block loop of both batched engines: packs each shared
    /// block, evaluates the good circuit once, builds every fault's
    /// masked-dropping lane mask from the rows `alive` still admits,
    /// propagates only when the mask is nonzero, and reports each hit
    /// group to `record` together with the row-local index of its lowest
    /// detecting lane (= the group's earliest hit pattern).
    ///
    /// [`detects_blocks`](Self::detects_blocks) and
    /// [`first_detections_blocks`](Self::first_detections_blocks) are
    /// both this loop with different partials, so their packing,
    /// occupancy accounting, masked dropping and lane attribution cannot
    /// drift apart — which is half of the first-detection engine's
    /// bit-identity contract. The plan carries the SIMD width; this
    /// dispatches to the monomorphised sweep for it.
    #[allow(clippy::too_many_arguments)]
    fn blocks_sweep<P>(
        &self,
        plan: &BatchPlan,
        range: Range<usize>,
        rows: &[Vec<BitVec>],
        faults: &FaultList,
        new_partial: impl Fn() -> P,
        alive: impl Fn(&P, usize) -> bool,
        record: impl FnMut(&mut P, usize, u32),
    ) -> Vec<(usize, P)> {
        match plan.width_words() {
            1 => self.blocks_sweep_w::<1, P>(plan, range, rows, faults, new_partial, alive, record),
            2 => self.blocks_sweep_w::<2, P>(plan, range, rows, faults, new_partial, alive, record),
            4 => self.blocks_sweep_w::<4, P>(plan, range, rows, faults, new_partial, alive, record),
            8 => self.blocks_sweep_w::<8, P>(plan, range, rows, faults, new_partial, alive, record),
            w => unreachable!("BatchPlan guarantees a supported width, got {w}"),
        }
    }

    /// The width-`W` monomorphisation of the shared block loop. Lane
    /// groups address the flat `0..64·W` lane space and all detection
    /// words are [`SimWord<W>`]; everything else is identical to the
    /// classic 64-lane loop, which *is* the `W = 1` instantiation.
    #[allow(clippy::too_many_arguments)]
    fn blocks_sweep_w<const W: usize, P>(
        &self,
        plan: &BatchPlan,
        range: Range<usize>,
        rows: &[Vec<BitVec>],
        faults: &FaultList,
        new_partial: impl Fn() -> P,
        alive: impl Fn(&P, usize) -> bool,
        mut record: impl FnMut(&mut P, usize, u32),
    ) -> Vec<(usize, P)> {
        debug_assert_eq!(
            plan.width_words(),
            W,
            "plan width / monomorphisation mismatch"
        );
        let blocks = &plan.blocks()[range];
        if blocks.is_empty() {
            return Vec::new();
        }
        // Streams are concatenated in row order, so a block range touches
        // a consecutive row span.
        let first_row = blocks[0].groups[0].row as usize;
        let last_row = blocks[blocks.len() - 1]
            .groups
            .last()
            .expect("nonempty")
            .row as usize;
        let mut partial: Vec<P> = (first_row..=last_row).map(|_| new_partial()).collect();

        let n = self.netlist().gate_count();
        let mut good = vec![SimWord::<W>::ZERO; n];
        let mut scratch = Scratch::<W>::new(n);
        let mut pi_words = vec![SimWord::<W>::ZERO; self.sim.input_count()];
        for block in blocks {
            pi_words.fill(SimWord::ZERO);
            for g in &block.groups {
                let row = &rows[g.row as usize];
                let start = g.start as usize;
                pack::pack_patterns_at_w(
                    &mut pi_words,
                    g.lane_offset as usize,
                    &row[start..start + g.len as usize],
                );
            }
            self.sim.eval_block_into_w(&pi_words, &mut good);
            self.sim
                .record_occupancy_wide(block.lanes_used, SimWord::<W>::LANES);
            for (fid, fault) in faults.iter() {
                let fi = fid.index();
                let mut mask = SimWord::<W>::ZERO;
                for g in &block.groups {
                    if alive(&partial[g.row as usize - first_row], fi) {
                        mask |= g.mask_w();
                    }
                }
                if mask.is_zero() {
                    continue; // masked dropping: nobody here still needs it
                }
                let det = self.propagate(&good, fault, &mut scratch) & mask;
                if det.is_zero() {
                    continue;
                }
                for g in &block.groups {
                    let hit = det & g.mask_w();
                    if !hit.is_zero() {
                        // the mask only admitted alive rows, and lanes
                        // ascend in stream order, so the lowest set lane
                        // is the group's earliest hit pattern
                        let first_idx = g.start + (hit.trailing_zeros() - g.lane_offset as u32);
                        record(&mut partial[g.row as usize - first_row], fi, first_idx);
                    }
                }
            }
        }
        partial
            .into_iter()
            .enumerate()
            .map(|(i, p)| (first_row + i, p))
            .collect()
    }

    /// Sentinel first-detection index: the pair was never detected.
    ///
    /// Used by [`first_detections`](Self::first_detections) and
    /// [`first_detections_blocks`](Self::first_detections_blocks) instead
    /// of `Option<u32>` so partials can be merged with a plain elementwise
    /// `min` (the sentinel is the identity of `min`). Real pattern indices
    /// are always `< u32::MAX`; the flow layer bounds `τ` far below that
    /// (`FlowConfig::MAX_TAU`).
    pub const NO_DETECTION: u32 = u32::MAX;

    /// Cross-row batched *first-detection* simulation: for every row and
    /// every fault, the index (within the row's own pattern stream) of the
    /// **earliest** pattern that detects the fault, or
    /// [`NO_DETECTION`](Self::NO_DETECTION).
    ///
    /// This is the engine behind the single-simulation τ-sweep: detection
    /// at evolution length `τ` is a prefix property — row `i` detects
    /// fault `j` at `τ` iff `first[i][j] ≤ τ` — so one pass at the largest
    /// `τ` yields every smaller τ's detection matrix by thresholding.
    ///
    /// The index costs nothing extra on top of
    /// [`detects_batch`](Self::detects_batch): lanes of a [`LaneGroup`]
    /// carry the row's patterns in ascending stream order and blocks are
    /// visited in ascending stream order, so the *lowest set lane* of the
    /// first nonzero masked detection word **is** the first detection —
    /// exactly the lane masked dropping stops at anyway.
    ///
    /// Equivalence: `first_detections(rows, f)[i][j] != NO_DETECTION` iff
    /// `detects_batch(rows, f)[i]` has bit `j` set, and the index equals
    /// `run(&rows[i], f).first_detection[j]`.
    ///
    /// [`LaneGroup`]: crate::LaneGroup
    ///
    /// # Panics
    ///
    /// Panics if a pattern's width differs from the input count.
    pub fn first_detections(&self, rows: &[Vec<BitVec>], faults: &FaultList) -> Vec<Vec<u32>> {
        self.first_detections_wide(rows, faults, 1)
    }

    /// [`first_detections`](Self::first_detections) over shared blocks of
    /// an explicit SIMD width. First-detection indices are minimums over
    /// the flat lane stream, which is the same stream at every width, so
    /// every index is byte-identical.
    ///
    /// # Panics
    ///
    /// Panics if `width_words` is unsupported or a pattern's width
    /// differs from the input count.
    pub fn first_detections_wide(
        &self,
        rows: &[Vec<BitVec>],
        faults: &FaultList,
        width_words: usize,
    ) -> Vec<Vec<u32>> {
        let lengths: Vec<usize> = rows.iter().map(|r| r.len()).collect();
        let plan = BatchPlan::with_width(&lengths, width_words);
        let mut out = vec![vec![Self::NO_DETECTION; faults.len()]; rows.len()];
        merge_first_detections(
            &mut out,
            self.first_detections_blocks(&plan, 0..plan.block_count(), rows, faults),
        );
        out
    }

    /// Simulates a consecutive range of a [`BatchPlan`]'s blocks and
    /// returns `(row, first_indices)` partials: for each row with lane
    /// groups in the range, the earliest detecting pattern index *within
    /// the range* per fault ([`NO_DETECTION`](Self::NO_DETECTION) if the
    /// range detects nothing for that pair).
    ///
    /// Merging partials with an elementwise `min` recovers
    /// [`first_detections`](Self::first_detections) for **any** partition
    /// of the block axis: the global first detection is the minimum over
    /// the per-range first detections (`min` is associative, commutative
    /// and has `NO_DETECTION` as identity), which is what lets callers fan
    /// ranges out across a worker pool without changing a single index.
    ///
    /// Masked dropping applies exactly as in
    /// [`detects_blocks`](Self::detects_blocks): once a row's first index
    /// for a fault is fixed inside the range, later blocks can only offer
    /// larger indices (lanes ascend in stream order), so skipping them
    /// cannot change the minimum.
    ///
    /// # Panics
    ///
    /// Panics if `range` is out of bounds for the plan, a row referenced
    /// by the plan is missing from `rows`, or a pattern's width differs
    /// from the input count.
    pub fn first_detections_blocks(
        &self,
        plan: &BatchPlan,
        range: Range<usize>,
        rows: &[Vec<BitVec>],
        faults: &FaultList,
    ) -> Vec<(usize, Vec<u32>)> {
        self.blocks_sweep(
            plan,
            range,
            rows,
            faults,
            || vec![Self::NO_DETECTION; faults.len()],
            |partial, fi| partial[fi] == Self::NO_DETECTION,
            |partial, fi, first_idx| partial[fi] = first_idx,
        )
    }

    /// Builds the full pattern × fault detection dictionary (no dropping):
    /// cell `(p, f)` is 1 iff pattern `p` detects fault `f`.
    ///
    /// With the paper's triplet-expansion convention and `τ = 0`, this *is*
    /// the initial Detection Matrix.
    ///
    /// # Panics
    ///
    /// Panics if a pattern's width differs from the input count.
    pub fn dictionary(&self, patterns: &[BitVec], faults: &FaultList) -> BitMatrix {
        self.dictionary_wide(patterns, faults, 1)
    }

    /// [`dictionary`](Self::dictionary) at an explicit SIMD width —
    /// bit-identical cells at every width (lane `k` of a `64·W`-lane
    /// block is pattern `base + k` either way).
    ///
    /// # Panics
    ///
    /// Panics if `width_words` is unsupported or a pattern's width
    /// differs from the input count.
    pub fn dictionary_wide(
        &self,
        patterns: &[BitVec],
        faults: &FaultList,
        width_words: usize,
    ) -> BitMatrix {
        match width_words {
            1 => self.dictionary_w::<1>(patterns, faults),
            2 => self.dictionary_w::<2>(patterns, faults),
            4 => self.dictionary_w::<4>(patterns, faults),
            8 => self.dictionary_w::<8>(patterns, faults),
            w => panic!("unsupported SIMD width {w} (expected one of {SIMD_WIDTHS:?})"),
        }
    }

    fn dictionary_w<const W: usize>(&self, patterns: &[BitVec], faults: &FaultList) -> BitMatrix {
        let n = self.netlist().gate_count();
        let lanes = SimWord::<W>::LANES;
        let mut good = vec![SimWord::<W>::ZERO; n];
        let mut scratch = Scratch::<W>::new(n);
        let mut m = BitMatrix::new(patterns.len(), faults.len());
        for (block_idx, chunk) in patterns.chunks(lanes).enumerate() {
            let base = block_idx * lanes;
            let pi_words = pack::pack_patterns_w::<W>(self.sim.input_count(), chunk);
            self.sim.eval_block_into_w(&pi_words, &mut good);
            self.sim.record_occupancy_wide(chunk.len(), lanes);
            let lane_mask = pack::lane_mask_w::<W>(chunk.len());
            for (fid, fault) in faults.iter() {
                let mut det = self.propagate(&good, fault, &mut scratch) & lane_mask;
                while !det.is_zero() {
                    let lane = det.trailing_zeros() as usize;
                    m.set(base + lane, fid.index(), true);
                    det.clear_lowest();
                }
            }
        }
        m
    }

    /// Injects `fault` into the good values of one block and returns the
    /// `64·W`-lane detection word (1 = some primary output differs in
    /// that lane). The caller masks invalid lanes.
    fn propagate<const W: usize>(
        &self,
        good: &[SimWord<W>],
        fault: Fault,
        s: &mut Scratch<W>,
    ) -> SimWord<W> {
        s.next_epoch();
        let netlist = self.sim.netlist();
        let forced_word = if fault.stuck_value() {
            SimWord::<W>::MAX
        } else {
            SimWord::<W>::ZERO
        };

        // Injection.
        let origin = match fault.site() {
            FaultSite::GateOutput(g) => {
                if forced_word == good[g.index()] {
                    return SimWord::ZERO; // never excited in this block
                }
                s.faulty[g.index()] = forced_word;
                s.stamp[g.index()] = s.epoch;
                s.touched.push(g.index() as u32);
                g
            }
            FaultSite::GateInput { gate, pin } => {
                let g = netlist.gate(gate);
                let v = eval_forced(g.kind(), g.fanin(), pin as usize, forced_word, |i| good[i]);
                if v == good[gate.index()] {
                    return SimWord::ZERO;
                }
                s.faulty[gate.index()] = v;
                s.stamp[gate.index()] = s.epoch;
                s.touched.push(gate.index() as u32);
                gate
            }
        };
        let mut min_w = usize::MAX;
        let mut max_w = 0usize;
        for &fo in self.fanouts_of(origin.index()) {
            let r = self.rank[fo.index()] as usize;
            s.pending[r >> 6] |= 1u64 << (r & 63);
            min_w = min_w.min(r >> 6);
            max_w = max_w.max(r >> 6);
        }

        // Event-driven sweep in topological rank order: pop set bits of
        // the pending bitset ascending. Each gate is visited at most once
        // (enqueued gates always rank above the gate that enqueues them),
        // so its fanins are final when its bit pops.
        let order = self.sim.order();
        let mut w = min_w;
        while w <= max_w {
            let word = s.pending[w];
            if word == 0 {
                w += 1;
                continue;
            }
            let b = word.trailing_zeros() as usize;
            s.pending[w] = word & (word - 1);
            let idx = order[(w << 6) | b].index();
            let kind = self.kinds[idx];
            if kind == GateKind::Dff {
                continue; // state boundary: effects stop at D pins
            }
            let epoch = s.epoch;
            let v = eval_mixed(kind, self.fanins_of(idx), |i| {
                if s.stamp[i] == epoch {
                    s.faulty[i]
                } else {
                    good[i]
                }
            });
            if v != good[idx] {
                s.faulty[idx] = v;
                s.stamp[idx] = epoch;
                s.touched.push(idx as u32);
                for &fo in self.fanouts_of(idx) {
                    let r = self.rank[fo.index()] as usize;
                    s.pending[r >> 6] |= 1u64 << (r & 63);
                    max_w = max_w.max(r >> 6);
                }
            }
        }

        // Detection: any touched primary output differing from good.
        let mut det = SimWord::<W>::ZERO;
        for &t in &s.touched {
            if self.is_po[t as usize] {
                det |= s.faulty[t as usize] ^ good[t as usize];
            }
        }
        det
    }
}

/// Merges `(row, partial)` first-detection results into `acc` by
/// elementwise `min` — the one owner of the first-detection merge
/// semantics, used by [`FaultSimulator::first_detections`] and by callers
/// that fan [`FaultSimulator::first_detections_blocks`] ranges out across
/// a worker pool themselves. `min` is associative and commutative with
/// [`FaultSimulator::NO_DETECTION`] as identity, so any partition and any
/// merge order yield the same indices.
///
/// # Panics
///
/// Panics if a partial names a row `acc` does not have or differs from
/// its `acc` row in width.
pub fn merge_first_detections(
    acc: &mut [Vec<u32>],
    partials: impl IntoIterator<Item = (usize, Vec<u32>)>,
) {
    for (row, partial) in partials {
        assert_eq!(
            partial.len(),
            acc[row].len(),
            "first-detection partial for row {row} differs from the accumulator in width"
        );
        for (a, v) in acc[row].iter_mut().zip(&partial) {
            *a = (*a).min(*v);
        }
    }
}

/// Evaluates a gate reading width-`W` values through `read`.
#[inline]
fn eval_mixed<const W: usize>(
    kind: GateKind,
    fanin: &[GateId],
    read: impl Fn(usize) -> SimWord<W>,
) -> SimWord<W> {
    type S<const W: usize> = SimWord<W>;
    match kind {
        GateKind::And => fanin.iter().fold(S::MAX, |a, f| a & read(f.index())),
        GateKind::Nand => !fanin.iter().fold(S::MAX, |a, f| a & read(f.index())),
        GateKind::Or => fanin.iter().fold(S::ZERO, |a, f| a | read(f.index())),
        GateKind::Nor => !fanin.iter().fold(S::ZERO, |a, f| a | read(f.index())),
        GateKind::Xor => fanin.iter().fold(S::ZERO, |a, f| a ^ read(f.index())),
        GateKind::Xnor => !fanin.iter().fold(S::ZERO, |a, f| a ^ read(f.index())),
        GateKind::Not => !read(fanin[0].index()),
        GateKind::Buff => read(fanin[0].index()),
        GateKind::Const0 => S::ZERO,
        GateKind::Const1 => S::MAX,
        GateKind::Input | GateKind::Dff => unreachable!("sources are assigned"),
    }
}

/// Evaluates a gate with one input pin forced to a constant word.
#[inline]
fn eval_forced<const W: usize>(
    kind: GateKind,
    fanin: &[GateId],
    forced_pin: usize,
    forced_word: SimWord<W>,
    read: impl Fn(usize) -> SimWord<W>,
) -> SimWord<W> {
    type S<const W: usize> = SimWord<W>;
    let pin_val = |p: usize, f: &GateId| {
        if p == forced_pin {
            forced_word
        } else {
            read(f.index())
        }
    };
    match kind {
        GateKind::And => fanin
            .iter()
            .enumerate()
            .fold(S::MAX, |a, (p, f)| a & pin_val(p, f)),
        GateKind::Nand => !fanin
            .iter()
            .enumerate()
            .fold(S::MAX, |a, (p, f)| a & pin_val(p, f)),
        GateKind::Or => fanin
            .iter()
            .enumerate()
            .fold(S::ZERO, |a, (p, f)| a | pin_val(p, f)),
        GateKind::Nor => !fanin
            .iter()
            .enumerate()
            .fold(S::ZERO, |a, (p, f)| a | pin_val(p, f)),
        GateKind::Xor => fanin
            .iter()
            .enumerate()
            .fold(S::ZERO, |a, (p, f)| a ^ pin_val(p, f)),
        GateKind::Xnor => !fanin
            .iter()
            .enumerate()
            .fold(S::ZERO, |a, (p, f)| a ^ pin_val(p, f)),
        GateKind::Not => !forced_word,
        GateKind::Buff => forced_word,
        _ => unreachable!("input-pin faults exist only on gates with pins"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use fbist_netlist::{bench, embedded};

    fn exhaustive_patterns(width: usize) -> Vec<BitVec> {
        (0..(1u64 << width))
            .map(|v| BitVec::from_u64(width, v))
            .collect()
    }

    #[test]
    fn c17_exhaustive_full_coverage() {
        let n = embedded::c17();
        let sim = FaultSimulator::new(&n).unwrap();
        let faults = FaultList::collapsed(&n);
        let res = sim.run(&exhaustive_patterns(5), &faults);
        assert_eq!(res.detected_count(), faults.len(), "c17 is fully testable");
        assert!((res.coverage() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn matches_naive_reference_on_c17() {
        let n = embedded::c17();
        let sim = FaultSimulator::new(&n).unwrap();
        let faults = FaultList::full(&n);
        let patterns = exhaustive_patterns(5);
        let dict = sim.dictionary(&patterns, &faults);
        for (fid, fault) in faults.iter() {
            for (p, pattern) in patterns.iter().enumerate() {
                let expect = reference::naive_detects(&n, fault, pattern);
                assert_eq!(
                    dict.get(p, fid.index()),
                    expect,
                    "fault {} pattern {}",
                    fault.describe(&n),
                    pattern
                );
            }
        }
    }

    #[test]
    fn matches_naive_reference_on_adder() {
        let n = embedded::adder4();
        let sim = FaultSimulator::new(&n).unwrap();
        let faults = FaultList::collapsed(&n);
        // pseudo-random subset of patterns
        let mut state = 0xDEADBEEFCAFEBABEu64;
        let patterns: Vec<BitVec> = (0..80)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                BitVec::from_u64(9, state)
            })
            .collect();
        let dict = sim.dictionary(&patterns, &faults);
        for (fid, fault) in faults.iter() {
            for (p, pattern) in patterns.iter().enumerate().step_by(7) {
                let expect = reference::naive_detects(&n, fault, pattern);
                assert_eq!(dict.get(p, fid.index()), expect, "{}", fault.describe(&n));
            }
        }
    }

    #[test]
    fn first_detection_is_first() {
        let n = embedded::c17();
        let sim = FaultSimulator::new(&n).unwrap();
        let faults = FaultList::collapsed(&n);
        let patterns = exhaustive_patterns(5);
        let res = sim.run(&patterns, &faults);
        let dict = sim.dictionary(&patterns, &faults);
        for (fid, _f) in faults.iter() {
            let expect = (0..patterns.len()).find(|&p| dict.get(p, fid.index()));
            assert_eq!(res.first_detection[fid.index()].map(|v| v as usize), expect);
        }
    }

    #[test]
    fn useful_prefix_trims_tail() {
        let n = embedded::c17();
        let sim = FaultSimulator::new(&n).unwrap();
        let faults = FaultList::collapsed(&n);
        let mut patterns = exhaustive_patterns(5);
        // duplicate the whole set: the second half adds nothing
        let dup = patterns.clone();
        patterns.extend(dup);
        let res = sim.run(&patterns, &faults);
        assert!(res.useful_prefix_len() <= 32);
        assert!(res.useful_prefix_len() > 0);
    }

    #[test]
    fn undetectable_fault_reported() {
        // y = OR(a, NOT(a)) is constant 1: y stuck-at-1 is undetectable.
        let src = "INPUT(a)\nOUTPUT(y)\nna = NOT(a)\ny = OR(a, na)\n";
        let n = bench::parse(src).unwrap();
        let sim = FaultSimulator::new(&n).unwrap();
        let y = n.find("y").unwrap();
        let f = Fault::stuck_at(FaultSite::GateOutput(y), true);
        let faults = FaultList::from_faults(vec![f]);
        let res = sim.run(&exhaustive_patterns(1), &faults);
        assert_eq!(res.detected_count(), 0);
        assert_eq!(res.first_detection[0], None);
    }

    #[test]
    fn input_pin_fault_differs_from_stem() {
        // a fans out to two XOR pins; branch fault flips one path only.
        let src = "INPUT(a)\nINPUT(b)\nOUTPUT(x)\nOUTPUT(y)\nx = XOR(a, b)\ny = BUFF(a)\n";
        let n = bench::parse(src).unwrap();
        let sim = FaultSimulator::new(&n).unwrap();
        let x = n.find("x").unwrap();
        let branch = Fault::stuck_at(FaultSite::GateInput { gate: x, pin: 0 }, false);
        let stem = Fault::stuck_at(FaultSite::GateOutput(n.find("a").unwrap()), false);
        let faults = FaultList::from_faults(vec![branch, stem]);
        // pattern a=1, b=0: branch fault flips x only; stem also flips y.
        let p: BitVec = "01".parse().unwrap();
        let dict = sim.dictionary(&[p], &faults);
        assert!(dict.get(0, 0));
        assert!(dict.get(0, 1));
        // now check with naive: branch fault must NOT affect y
        let pat: BitVec = "01".parse().unwrap();
        assert!(reference::naive_detects(&n, branch, &pat));
    }

    #[test]
    fn detects_equals_run_detected() {
        let n = embedded::majority();
        let sim = FaultSimulator::new(&n).unwrap();
        let faults = FaultList::collapsed(&n);
        let patterns = exhaustive_patterns(3);
        assert_eq!(
            sim.detects(&patterns, &faults),
            sim.run(&patterns, &faults).detected
        );
    }

    #[test]
    fn detects_batch_matches_per_row() {
        // rows of wildly different lengths — empty, sub-block, straddling
        // a shared-block boundary, and multi-block — must come back
        // bit-identical to the per-row path.
        let n = embedded::adder4();
        let sim = FaultSimulator::new(&n).unwrap();
        let faults = FaultList::collapsed(&n);
        let mut state = 0x1234_5678_9ABC_DEF0u64;
        let mut pat = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            BitVec::from_u64(9, state)
        };
        let rows: Vec<Vec<BitVec>> = [0usize, 4, 1, 60, 130, 7, 0, 64, 33]
            .iter()
            .map(|&len| (0..len).map(|_| pat()).collect())
            .collect();
        let batched = sim.detects_batch(&rows, &faults);
        assert_eq!(batched.len(), rows.len());
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(batched[i], sim.detects(row, &faults), "row {i}");
        }
    }

    #[test]
    fn first_detections_match_per_row_run() {
        // same mixed row shapes as the detects_batch test: empty,
        // sub-block, straddling and multi-block rows
        let n = embedded::adder4();
        let sim = FaultSimulator::new(&n).unwrap();
        let faults = FaultList::collapsed(&n);
        let mut state = 0x1234_5678_9ABC_DEF0u64;
        let mut pat = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            BitVec::from_u64(9, state)
        };
        let rows: Vec<Vec<BitVec>> = [0usize, 4, 1, 60, 130, 7, 0, 64, 33]
            .iter()
            .map(|&len| (0..len).map(|_| pat()).collect())
            .collect();
        let batched = sim.first_detections(&rows, &faults);
        assert_eq!(batched.len(), rows.len());
        for (i, row) in rows.iter().enumerate() {
            let per_row = sim.run(row, &faults);
            for (fid, _f) in faults.iter() {
                let expect = per_row.first_detection[fid.index()]
                    .map_or(FaultSimulator::NO_DETECTION, |v| v);
                assert_eq!(batched[i][fid.index()], expect, "row {i} fault {fid:?}");
            }
            // and the thresholded view agrees with plain detection
            let detected = sim.detects(row, &faults);
            for (f, &first) in batched[i].iter().enumerate() {
                assert_eq!(
                    first != FaultSimulator::NO_DETECTION,
                    detected.get(f),
                    "row {i} fault {f}"
                );
            }
        }
    }

    #[test]
    fn first_detections_blocks_min_merge_is_partition_invariant() {
        let n = embedded::c17();
        let sim = FaultSimulator::new(&n).unwrap();
        let faults = FaultList::collapsed(&n);
        let rows: Vec<Vec<BitVec>> = (0..9)
            .map(|r| (0..23u64).map(|v| BitVec::from_u64(5, v * 7 + r)).collect())
            .collect();
        let plan = BatchPlan::new(&[23; 9]);
        let whole = sim.first_detections(&rows, &faults);
        for chunk in [1usize, 2, 3] {
            let mut out = vec![vec![FaultSimulator::NO_DETECTION; faults.len()]; rows.len()];
            let mut lo = 0;
            while lo < plan.block_count() {
                let hi = (lo + chunk).min(plan.block_count());
                merge_first_detections(
                    &mut out,
                    sim.first_detections_blocks(&plan, lo..hi, &rows, &faults),
                );
                lo = hi;
            }
            assert_eq!(out, whole, "chunk={chunk}");
        }
    }

    #[test]
    fn first_detections_agree_with_dictionary() {
        // the batched first index must be the row-local index of the first
        // 1-cell in the exhaustive (no-dropping) dictionary
        let n = embedded::c17();
        let sim = FaultSimulator::new(&n).unwrap();
        let faults = FaultList::collapsed(&n);
        let rows: Vec<Vec<BitVec>> = (0..5)
            .map(|r| (0..13u64).map(|v| BitVec::from_u64(5, v * 3 + r)).collect())
            .collect();
        let firsts = sim.first_detections(&rows, &faults);
        for (i, row) in rows.iter().enumerate() {
            let dict = sim.dictionary(row, &faults);
            for (fid, _f) in faults.iter() {
                let expect = (0..row.len()).find(|&p| dict.get(p, fid.index()));
                assert_eq!(
                    firsts[i][fid.index()],
                    expect.map_or(FaultSimulator::NO_DETECTION, |v| v as u32),
                    "row {i} fault {fid:?}"
                );
            }
        }
    }

    #[test]
    fn detects_blocks_union_is_partition_invariant() {
        let n = embedded::c17();
        let sim = FaultSimulator::new(&n).unwrap();
        let faults = FaultList::collapsed(&n);
        let rows: Vec<Vec<BitVec>> = (0..9)
            .map(|r| (0..23u64).map(|v| BitVec::from_u64(5, v * 7 + r)).collect())
            .collect();
        let plan = BatchPlan::new(&[23; 9]);
        let whole = sim.detects_batch(&rows, &faults);
        for chunk in [1usize, 2, 3] {
            let mut out = vec![BitVec::zeros(faults.len()); rows.len()];
            let mut lo = 0;
            while lo < plan.block_count() {
                let hi = (lo + chunk).min(plan.block_count());
                for (row, bits) in sim.detects_blocks(&plan, lo..hi, &rows, &faults) {
                    out[row].union_with(&bits);
                }
                lo = hi;
            }
            assert_eq!(out, whole, "chunk={chunk}");
        }
    }

    #[test]
    fn every_simd_width_matches_width_one() {
        // detection sets, first-detection indices and dictionary cells
        // must be byte-identical at W = 1, 2, 4, 8
        let n = embedded::adder4();
        let sim = FaultSimulator::new(&n).unwrap();
        let faults = FaultList::collapsed(&n);
        let mut state = 0x0DDB_A11C_0FFE_E000u64;
        let mut pat = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            BitVec::from_u64(9, state)
        };
        let rows: Vec<Vec<BitVec>> = [0usize, 4, 1, 60, 130, 7, 0, 300, 33]
            .iter()
            .map(|&len| (0..len).map(|_| pat()).collect())
            .collect();
        let flat: Vec<BitVec> = rows.iter().flatten().cloned().collect();
        let run1 = sim.run(&flat, &faults);
        let dict1 = sim.dictionary(&flat, &faults);
        let batch1 = sim.detects_batch(&rows, &faults);
        let first1 = sim.first_detections(&rows, &faults);
        for w in [2usize, 4, 8] {
            let runw = sim.run_wide(&flat, &faults, w);
            assert_eq!(runw.detected, run1.detected, "run detected W={w}");
            assert_eq!(
                runw.first_detection, run1.first_detection,
                "run first detection W={w}"
            );
            assert_eq!(sim.dictionary_wide(&flat, &faults, w), dict1, "dict W={w}");
            assert_eq!(
                sim.detects_batch_wide(&rows, &faults, w),
                batch1,
                "batch W={w}"
            );
            assert_eq!(
                sim.first_detections_wide(&rows, &faults, w),
                first1,
                "first detections W={w}"
            );
        }
    }

    #[test]
    fn wide_blocks_min_merge_is_partition_invariant() {
        // the partition-invariance that lets core fan block ranges across
        // the pool must hold for wide plans too
        let n = embedded::c17();
        let sim = FaultSimulator::new(&n).unwrap();
        let faults = FaultList::collapsed(&n);
        let rows: Vec<Vec<BitVec>> = (0..9)
            .map(|r| (0..43u64).map(|v| BitVec::from_u64(5, v * 7 + r)).collect())
            .collect();
        let whole = sim.first_detections(&rows, &faults);
        for w in [2usize, 4, 8] {
            let plan = BatchPlan::with_width(&[43; 9], w);
            for chunk in [1usize, 2] {
                let mut out = vec![vec![FaultSimulator::NO_DETECTION; faults.len()]; rows.len()];
                let mut lo = 0;
                while lo < plan.block_count() {
                    let hi = (lo + chunk).min(plan.block_count());
                    merge_first_detections(
                        &mut out,
                        sim.first_detections_blocks(&plan, lo..hi, &rows, &faults),
                    );
                    lo = hi;
                }
                assert_eq!(out, whole, "W={w} chunk={chunk}");
            }
        }
    }

    #[test]
    fn batched_occupancy_beats_per_row() {
        let n = embedded::c17();
        let sim = FaultSimulator::new(&n).unwrap();
        let faults = FaultList::collapsed(&n);
        // 16 rows of 4 patterns (τ = 3 shape)
        let rows: Vec<Vec<BitVec>> = (0..16)
            .map(|r| (0..4u64).map(|v| BitVec::from_u64(5, v + r)).collect())
            .collect();
        sim.good_simulator().reset_occupancy();
        for row in &rows {
            let _ = sim.detects(row, &faults);
        }
        let per_row = sim.good_simulator().occupancy();
        assert_eq!(per_row.blocks, 16);
        assert!(per_row.ratio() < 0.1, "per-row ratio {}", per_row.ratio());

        sim.good_simulator().reset_occupancy();
        let _ = sim.detects_batch(&rows, &faults);
        let batched = sim.good_simulator().occupancy();
        assert_eq!(batched.blocks, 1);
        assert_eq!(batched.ratio(), 1.0);
    }

    #[test]
    fn empty_pattern_set_detects_nothing() {
        let n = embedded::c17();
        let sim = FaultSimulator::new(&n).unwrap();
        let faults = FaultList::collapsed(&n);
        let res = sim.run(&[], &faults);
        assert_eq!(res.detected_count(), 0);
        assert_eq!(res.useful_prefix_len(), 0);
    }
}
