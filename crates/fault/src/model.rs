//! The single-stuck-at fault model.

use std::fmt;

use fbist_netlist::{GateId, GateKind, Netlist};

/// Location of a stuck-at fault.
///
/// Faults live either on a gate's output net (the *stem*) or on one of its
/// input pins (a *branch*). Branch faults are distinct from the stem fault
/// of the driving net whenever that net fans out to more than one pin —
/// which is exactly why both kinds are needed for a complete universe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FaultSite {
    /// The output net of a gate.
    GateOutput(GateId),
    /// Input pin `pin` of gate `gate`.
    GateInput {
        /// The gate whose input pin is faulty.
        gate: GateId,
        /// Pin index into the gate's fanin list.
        pin: u32,
    },
}

/// A single stuck-at fault: a [`FaultSite`] stuck at a constant value.
///
/// ```
/// use fbist_fault::{Fault, FaultSite};
/// use fbist_netlist::GateId;
///
/// let f = Fault::stuck_at(FaultSite::GateOutput(GateId::from_index(3)), true);
/// assert!(f.stuck_value());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fault {
    site: FaultSite,
    stuck: bool,
}

impl Fault {
    /// Creates a stuck-at-`value` fault at `site`.
    pub fn stuck_at(site: FaultSite, value: bool) -> Fault {
        Fault { site, stuck: value }
    }

    /// The fault location.
    pub fn site(&self) -> FaultSite {
        self.site
    }

    /// The stuck value (`false` = stuck-at-0, `true` = stuck-at-1).
    pub fn stuck_value(&self) -> bool {
        self.stuck
    }

    /// Renders the fault with circuit names, e.g. `y/1 (in-pin 0 of z)`.
    pub fn describe(&self, netlist: &Netlist) -> String {
        let v = self.stuck as u8;
        match self.site {
            FaultSite::GateOutput(g) => format!("{}/{v}", netlist.gate(g).name()),
            FaultSite::GateInput { gate, pin } => {
                let src = netlist.gate(gate).fanin()[pin as usize];
                format!(
                    "{}->{}.{pin}/{v}",
                    netlist.gate(src).name(),
                    netlist.gate(gate).name()
                )
            }
        }
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let v = self.stuck as u8;
        match self.site {
            FaultSite::GateOutput(g) => write!(f, "{g}/{v}"),
            FaultSite::GateInput { gate, pin } => write!(f, "{gate}.{pin}/{v}"),
        }
    }
}

/// Dense identifier of a fault within a [`FaultList`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FaultId(pub(crate) u32);

impl FaultId {
    /// The raw index into the owning list.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an id from a raw index (only meaningful for the same list).
    pub fn from_index(i: usize) -> FaultId {
        FaultId(i as u32)
    }
}

/// An ordered list of target faults — the paper's fault list `F`.
///
/// Build the complete universe with [`FaultList::full`], or the
/// equivalence-collapsed universe (the usual ATPG target) with
/// [`FaultList::collapsed`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultList {
    faults: Vec<Fault>,
}

impl FaultList {
    /// Creates an empty list.
    pub fn new() -> FaultList {
        FaultList { faults: Vec::new() }
    }

    /// Builds the complete single-stuck-at universe of a netlist: both
    /// polarities on every gate output net and on every gate input pin.
    ///
    /// DFF gates are skipped (fault-model them after
    /// [`full_scan`](fbist_netlist::full_scan), where they become input /
    /// output nets of the combinational core).
    pub fn full(netlist: &Netlist) -> FaultList {
        let mut faults = Vec::new();
        for (id, g) in netlist.iter() {
            if g.kind() == GateKind::Dff {
                continue;
            }
            for v in [false, true] {
                faults.push(Fault::stuck_at(FaultSite::GateOutput(id), v));
            }
            if g.kind() == GateKind::Input {
                continue;
            }
            for pin in 0..g.fanin().len() {
                for v in [false, true] {
                    faults.push(Fault::stuck_at(
                        FaultSite::GateInput {
                            gate: id,
                            pin: pin as u32,
                        },
                        v,
                    ));
                }
            }
        }
        FaultList { faults }
    }

    /// Builds the equivalence-collapsed universe (see [`crate::collapse`]).
    pub fn collapsed(netlist: &Netlist) -> FaultList {
        crate::collapse::collapse(netlist, &FaultList::full(netlist)).representatives
    }

    /// Builds a list from explicit faults.
    pub fn from_faults(faults: Vec<Fault>) -> FaultList {
        FaultList { faults }
    }

    /// Number of faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// `true` if the list is empty.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The fault with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn get(&self, id: FaultId) -> Fault {
        self.faults[id.index()]
    }

    /// Iterates over `(id, fault)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (FaultId, Fault)> + '_ {
        self.faults
            .iter()
            .enumerate()
            .map(|(i, &f)| (FaultId(i as u32), f))
    }

    /// The faults as a slice.
    pub fn as_slice(&self) -> &[Fault] {
        &self.faults
    }

    /// Returns a sublist containing only the selected faults (in the given
    /// order).
    pub fn subset(&self, ids: &[FaultId]) -> FaultList {
        FaultList {
            faults: ids.iter().map(|&i| self.get(i)).collect(),
        }
    }

    /// Finds the id of a fault, if present.
    pub fn position(&self, fault: &Fault) -> Option<FaultId> {
        self.faults
            .iter()
            .position(|f| f == fault)
            .map(|i| FaultId(i as u32))
    }
}

impl FromIterator<Fault> for FaultList {
    fn from_iter<T: IntoIterator<Item = Fault>>(iter: T) -> Self {
        FaultList {
            faults: iter.into_iter().collect(),
        }
    }
}

impl<'a> IntoIterator for &'a FaultList {
    type Item = &'a Fault;
    type IntoIter = std::slice::Iter<'a, Fault>;

    fn into_iter(self) -> Self::IntoIter {
        self.faults.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbist_netlist::embedded;

    #[test]
    fn full_universe_size_c17() {
        // c17: 5 inputs + 6 NAND gates, every NAND has 2 pins.
        // outputs: 11 gates * 2 = 22; pins: 6 gates * 2 pins * 2 = 24.
        let n = embedded::c17();
        let f = FaultList::full(&n);
        assert_eq!(f.len(), 22 + 24);
    }

    #[test]
    fn dffs_are_skipped() {
        let n = embedded::johnson3();
        let f = FaultList::full(&n);
        assert!(f.iter().all(|(_, fault)| match fault.site() {
            FaultSite::GateOutput(g) => n.gate(g).kind() != GateKind::Dff,
            FaultSite::GateInput { gate, .. } => n.gate(gate).kind() != GateKind::Dff,
        }));
    }

    #[test]
    fn ids_are_stable() {
        let n = embedded::c17();
        let f = FaultList::full(&n);
        for (id, fault) in f.iter() {
            assert_eq!(f.get(id), fault);
            assert_eq!(f.position(&fault), Some(id));
        }
    }

    #[test]
    fn subset_preserves_order() {
        let n = embedded::c17();
        let f = FaultList::full(&n);
        let ids = vec![FaultId(3), FaultId(0), FaultId(7)];
        let sub = f.subset(&ids);
        assert_eq!(sub.len(), 3);
        assert_eq!(sub.get(FaultId(0)), f.get(FaultId(3)));
        assert_eq!(sub.get(FaultId(1)), f.get(FaultId(0)));
    }

    #[test]
    fn describe_uses_names() {
        let n = embedded::c17();
        let f = FaultList::full(&n);
        let texts: Vec<String> = f.iter().map(|(_, fault)| fault.describe(&n)).collect();
        assert!(texts.iter().any(|t| t == "1/0"));
        assert!(texts.iter().any(|t| t.contains("->")));
    }
}
