//! Checkpoint fault lists.
//!
//! The *checkpoint theorem*: in a combinational circuit, a test set that
//! detects every stuck-at fault on the primary inputs and on the fanout
//! branches detects every single stuck-at fault of the circuit. The
//! checkpoints therefore form a sufficient (and usually much smaller)
//! target list — an alternative to equivalence collapsing with different
//! trade-offs (collapsing preserves the fault *set* exactly; checkpoints
//! shrink it further but only guarantee detection-equivalence).
//!
//! Provided here both as a practical reduced universe and as an oracle for
//! cross-checking the collapsing implementation (see the tests).

use fbist_netlist::{GateKind, Netlist};

use crate::model::{Fault, FaultList, FaultSite};

/// Builds the checkpoint fault list: both stuck-at polarities on every
/// primary input and on every fanout branch (an input pin whose source net
/// drives more than one pin).
///
/// # Example
///
/// ```
/// use fbist_netlist::embedded;
/// use fbist_fault::{checkpoint_faults, FaultList};
///
/// let c17 = embedded::c17();
/// let cps = checkpoint_faults(&c17);
/// let collapsed = FaultList::collapsed(&c17);
/// assert!(cps.len() <= collapsed.len());
/// ```
pub fn checkpoint_faults(netlist: &Netlist) -> FaultList {
    let mut faults = Vec::new();
    // primary inputs
    for (id, g) in netlist.iter() {
        if g.kind() == GateKind::Input {
            for v in [false, true] {
                faults.push(Fault::stuck_at(FaultSite::GateOutput(id), v));
            }
        }
    }
    // fanout branches: pins fed by nets that drive ≥ 2 pins
    let mut pin_count = vec![0usize; netlist.gate_count()];
    for (_, g) in netlist.iter() {
        for &f in g.fanin() {
            pin_count[f.index()] += 1;
        }
    }
    for (id, g) in netlist.iter() {
        if g.kind() == GateKind::Dff {
            continue;
        }
        for (pin, &src) in g.fanin().iter().enumerate() {
            if pin_count[src.index()] >= 2 {
                for v in [false, true] {
                    faults.push(Fault::stuck_at(
                        FaultSite::GateInput {
                            gate: id,
                            pin: pin as u32,
                        },
                        v,
                    ));
                }
            }
        }
    }
    FaultList::from_faults(faults)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::FaultSimulator;
    use fbist_bits::BitVec;
    use fbist_netlist::{bench, embedded};

    fn exhaustive(width: usize) -> Vec<BitVec> {
        (0..(1u64 << width))
            .map(|v| BitVec::from_u64(width, v))
            .collect()
    }

    #[test]
    fn c17_checkpoint_count() {
        // c17: 5 PIs; nets 3 and 11 and 16 fan out (each feeds 2 pins)
        // → checkpoints = 5 PIs + 6 branch pins = 11 sites, 22 faults
        let n = embedded::c17();
        let cps = checkpoint_faults(&n);
        assert_eq!(cps.len(), 22);
    }

    #[test]
    fn checkpoint_theorem_on_embedded_circuits() {
        // a test set with full checkpoint coverage must have full coverage
        // of the complete (collapsed) universe — verified exhaustively
        for n in [embedded::c17(), embedded::majority()] {
            let w = n.inputs().len();
            let sim = FaultSimulator::new(&n).unwrap();
            let cps = checkpoint_faults(&n);
            let full = FaultList::collapsed(&n);
            let patterns = exhaustive(w);
            // build a minimal-ish pattern subset achieving checkpoint cover
            let run = sim.run(&patterns, &cps);
            let subset: Vec<BitVec> = run
                .first_detection
                .iter()
                .flatten()
                .map(|&p| patterns[p as usize].clone())
                .collect();
            let cp_cov = sim.detects(&subset, &cps).count_ones();
            assert_eq!(
                cp_cov,
                cps.len(),
                "{}: checkpoint cover incomplete",
                n.name()
            );
            // theorem check: the subset also covers every detectable fault
            let full_cov = sim.detects(&subset, &full).count_ones();
            let full_all = sim.detects(&patterns, &full).count_ones();
            assert_eq!(
                full_cov,
                full_all,
                "{}: checkpoint-covering set missed faults",
                n.name()
            );
        }
    }

    #[test]
    fn fanout_free_circuit_has_only_pi_checkpoints() {
        let src = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nm = AND(a, b)\ny = NOT(m)\n";
        let n = bench::parse(src).unwrap();
        let cps = checkpoint_faults(&n);
        assert_eq!(cps.len(), 4, "2 PIs × 2 polarities only");
    }

    #[test]
    fn checkpoints_smaller_than_full_universe() {
        let n = embedded::adder4();
        assert!(checkpoint_faults(&n).len() < FaultList::full(&n).len());
    }
}
