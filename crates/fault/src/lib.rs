//! Single-stuck-at fault modelling and bit-parallel fault simulation.
//!
//! The paper's detection matrix has one column per stuck-at fault of the
//! unit under test and one row per reseeding triplet; cell `(i, j)` is 1
//! iff triplet `i`'s expanded test set detects fault `j`. This crate
//! provides everything needed to fill that matrix:
//!
//! * [`Fault`], [`FaultSite`], [`FaultList`] — the classical single
//!   stuck-at fault universe over gate output nets (stems) and gate input
//!   pins (branches);
//! * [`collapse`] — structural equivalence collapsing (union-find over the
//!   textbook gate rules), which shrinks the universe ~2.5× without losing
//!   information;
//! * [`FaultSimulator`] — a 64-way bit-parallel, event-driven ("single
//!   fault propagation") fault simulator with fault dropping, plus a
//!   detection-dictionary builder;
//! * [`BatchPlan`] — the cross-row batch planner behind
//!   [`FaultSimulator::detects_batch`], which fills every simulation lane
//!   when many rows are simulated at once.
//!
//! # Cross-row batching: lane groups and masked dropping
//!
//! The matrix build hands the simulator one pattern stream per triplet
//! row. Simulated per row, each stream occupies its own 64-lane blocks:
//! a row of `τ + 1` patterns wastes `63 − τ (mod 64)` lanes of its last
//! block — 50 % dead lanes at the default `τ = 31`, 94 % at `τ = 3` —
//! and the good-circuit evaluation plus every fault's cone propagation
//! is repeated for every row.
//!
//! [`BatchPlan`] instead concatenates the streams of all rows (in row
//! order) into *shared* blocks. Each block carries up to 64 consecutive
//! patterns of the global stream, and a [`LaneGroup`] records which lanes
//! belong to which row; a row whose stream crosses a block boundary simply
//! splits into groups in consecutive blocks. Every block except possibly
//! the last is completely full, so the good circuit is evaluated — and
//! each fault's cone propagated — once per *shared* block: up to
//! `64 / (τ + 1)`× fewer of both than the per-row build.
//!
//! Detection is attributed through the groups: fault `f`'s 64-bit
//! detection word for a block is ANDed with each group's lane mask, and a
//! nonzero intersection marks `(row, f)` detected. *Masked dropping*
//! removes redundant work on top: once every row with lanes in a block has
//! already detected `f`, the fault's propagation is skipped for that
//! block, and rows that already detected `f` are masked out of its
//! detection word elsewhere. Dropping can never change a row's detected
//! set, because a row detects `f` iff **some** lane of **some** of its
//! groups differs at a primary output — a monotone OR over the row's
//! lanes. Skipping a lane is only ever done when the `(row, f)` pair is
//! already detected, i.e. when the OR is already 1, so the skipped lane
//! could only have re-confirmed a known detection (the same argument that
//! makes classical per-row fault dropping exact). The batched matrix is
//! therefore bit-identical to the per-row one — pinned for every
//! profile × TPG × `jobs` × `τ` combination by the
//! `batched_matrix_equivalence` suite.
//!
//! # Example
//!
//! ```
//! use fbist_netlist::embedded;
//! use fbist_fault::{FaultList, FaultSimulator};
//! use fbist_bits::BitVec;
//!
//! let c17 = embedded::c17();
//! let faults = FaultList::collapsed(&c17);
//! let sim = FaultSimulator::new(&c17)?;
//! // Exhaustive patterns detect every c17 fault.
//! let patterns: Vec<BitVec> = (0..32u64).map(|v| BitVec::from_u64(5, v)).collect();
//! let detected = sim.detects(&patterns, &faults);
//! assert_eq!(detected.count_ones(), faults.len());
//! # Ok::<(), fbist_sim::SimError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod checkpoint;
pub mod collapse;
mod model;
pub mod reference;
mod sim;

pub use batch::{BatchBlock, BatchPlan, LaneGroup};
pub use checkpoint::checkpoint_faults;
pub use model::{Fault, FaultId, FaultList, FaultSite};
pub use sim::{merge_first_detections, FaultSimResult, FaultSimulator};
