//! Single-stuck-at fault modelling and bit-parallel fault simulation.
//!
//! The paper's detection matrix has one column per stuck-at fault of the
//! unit under test and one row per reseeding triplet; cell `(i, j)` is 1
//! iff triplet `i`'s expanded test set detects fault `j`. This crate
//! provides everything needed to fill that matrix:
//!
//! * [`Fault`], [`FaultSite`], [`FaultList`] — the classical single
//!   stuck-at fault universe over gate output nets (stems) and gate input
//!   pins (branches);
//! * [`collapse`] — structural equivalence collapsing (union-find over the
//!   textbook gate rules), which shrinks the universe ~2.5× without losing
//!   information;
//! * [`FaultSimulator`] — a 64-way bit-parallel, event-driven ("single
//!   fault propagation") fault simulator with fault dropping, plus a
//!   detection-dictionary builder.
//!
//! # Example
//!
//! ```
//! use fbist_netlist::embedded;
//! use fbist_fault::{FaultList, FaultSimulator};
//! use fbist_bits::BitVec;
//!
//! let c17 = embedded::c17();
//! let faults = FaultList::collapsed(&c17);
//! let sim = FaultSimulator::new(&c17)?;
//! // Exhaustive patterns detect every c17 fault.
//! let patterns: Vec<BitVec> = (0..32u64).map(|v| BitVec::from_u64(5, v)).collect();
//! let detected = sim.detects(&patterns, &faults);
//! assert_eq!(detected.count_ones(), faults.len());
//! # Ok::<(), fbist_sim::SimError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checkpoint;
pub mod collapse;
mod model;
pub mod reference;
mod sim;

pub use checkpoint::checkpoint_faults;
pub use model::{Fault, FaultId, FaultList, FaultSite};
pub use sim::{FaultSimResult, FaultSimulator};
