//! Linear feedback shift register TPGs, including multiple-polynomial
//! reseeding.
//!
//! LFSR reseeding is the classical deterministic-BIST encoding the paper's
//! title refers to (Hellebrand et al., ITC 1992 / ICCAD 1995): instead of
//! storing whole test patterns, store LFSR seeds — and, in the
//! multiple-polynomial variant, a few bits selecting the feedback
//! polynomial — and let the LFSR expand them on chip.

use fbist_bits::BitVec;

use crate::generator::PatternGenerator;
use crate::triplet::Triplet;

/// LFSR structure: where the feedback taps are applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LfsrKind {
    /// External-XOR (Fibonacci): one parity over the tapped bits feeds the
    /// shift-in.
    #[default]
    Fibonacci,
    /// Internal-XOR (Galois): the shifted-out bit is XOR-ed into the tapped
    /// positions.
    Galois,
}

/// Maximal-length tap positions (1-indexed, XAPP052-style) for the
/// left-shift Fibonacci form used here: the feedback bit is the XOR of the
/// listed register bits (bit `t` of the table is register index `t − 1`).
/// For widths without an entry a `{w, 1}` fallback is used; sequences stay
/// deterministic, just not guaranteed maximal-length. Widths 2–16 are
/// verified maximal by an exhaustive test below.
const MAXIMAL_TAPS: &[(usize, &[u32])] = &[
    (2, &[2, 1]),
    (3, &[3, 2]),
    (4, &[4, 3]),
    (5, &[5, 3]),
    (6, &[6, 5]),
    (7, &[7, 6]),
    (8, &[8, 6, 5, 4]),
    (9, &[9, 5]),
    (10, &[10, 7]),
    (11, &[11, 9]),
    (12, &[12, 6, 4, 1]),
    (13, &[13, 4, 3, 1]),
    (14, &[14, 5, 3, 1]),
    (15, &[15, 14]),
    (16, &[16, 15, 13, 4]),
    (17, &[17, 14]),
    (18, &[18, 11]),
    (19, &[19, 6, 2, 1]),
    (20, &[20, 17]),
    (21, &[21, 19]),
    (22, &[22, 21]),
    (23, &[23, 18]),
    (24, &[24, 23, 22, 17]),
    (25, &[25, 22]),
    (26, &[26, 6, 2, 1]),
    (27, &[27, 5, 2, 1]),
    (28, &[28, 25]),
    (29, &[29, 27]),
    (30, &[30, 6, 4, 1]),
    (31, &[31, 28]),
    (32, &[32, 22, 2, 1]),
    (48, &[48, 47, 21, 20]),
    (64, &[64, 63, 61, 60]),
];

/// Default tap mask for a given width.
fn default_taps(width: usize) -> BitVec {
    assert!(width >= 2, "LFSR width must be at least 2");
    let mut mask = BitVec::zeros(width);
    match MAXIMAL_TAPS.iter().find(|&&(w, _)| w == width) {
        Some(&(_, taps)) => {
            for &t in taps {
                mask.set(t as usize - 1, true);
            }
        }
        None => {
            // fallback {w, 1}: keeps the update a permutation (bit w−1
            // participates in the feedback) though not necessarily maximal
            mask.set(width - 1, true);
            mask.set(0, true);
        }
    }
    mask
}

/// A single-polynomial LFSR test pattern generator.
///
/// State is the `w`-bit register; each step shifts left by one and feeds
/// back according to the tap mask. The emitted pattern is the whole state.
///
/// The all-zero state is the XOR-LFSR fixed point: a zero seed emits only
/// zero patterns. The reseeding flow tolerates this (such a triplet simply
/// covers whatever the zero pattern covers).
///
/// # Example
///
/// ```
/// use fbist_tpg::{Lfsr, PatternGenerator, Triplet};
/// use fbist_bits::BitVec;
///
/// let lfsr = Lfsr::maximal(3); // x^3 + x + 1, period 7
/// let t = Triplet::new(BitVec::from_u64(3, 1), BitVec::zeros(3), 6);
/// let seen: Vec<u64> = lfsr.expand(&t).iter().map(|p| p.to_u64().unwrap()).collect();
/// assert_eq!(seen.len(), 7);
/// // a maximal LFSR visits all 7 non-zero states
/// let mut sorted = seen.clone();
/// sorted.sort_unstable();
/// sorted.dedup();
/// assert_eq!(sorted.len(), 7);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lfsr {
    width: usize,
    taps: BitVec,
    kind: LfsrKind,
    name: String,
}

impl Lfsr {
    /// Creates an LFSR with an explicit tap mask (bit `i` = coefficient of
    /// `x^i`). The mask must have at least one set bit: with no feedback
    /// taps the register degenerates into a pure shift register that
    /// drains to the all-zero state within `width` steps, silently
    /// destroying the pattern sequence (and, on the MISR side, the
    /// signature).
    ///
    /// # Panics
    ///
    /// Panics if `taps.width() != width`, `width < 2`, or `taps` is
    /// all-zero.
    pub fn new(width: usize, taps: BitVec, kind: LfsrKind) -> Lfsr {
        assert!(width >= 2, "LFSR width must be at least 2");
        assert_eq!(taps.width(), width, "tap mask width mismatch");
        assert!(
            !taps.is_zero(),
            "degenerate all-zero tap mask: an LFSR with no feedback taps \
             is a pure shift register that drains to zero"
        );
        Lfsr {
            width,
            taps,
            kind,
            name: "lfsr".to_owned(),
        }
    }

    /// Creates a Fibonacci LFSR with the default (primitive where known)
    /// polynomial for this width.
    pub fn maximal(width: usize) -> Lfsr {
        Lfsr::new(width, default_taps(width), LfsrKind::Fibonacci)
    }

    /// The feedback tap mask.
    pub fn taps(&self) -> &BitVec {
        &self.taps
    }

    /// The LFSR structure (Fibonacci or Galois).
    pub fn kind(&self) -> LfsrKind {
        self.kind
    }

    /// Advances the state by one step.
    pub fn step(&self, state: &BitVec) -> BitVec {
        match self.kind {
            LfsrKind::Fibonacci => {
                let fb = (state & &self.taps).parity();
                let mut next = state.shl1();
                next.set(0, fb);
                next
            }
            LfsrKind::Galois => {
                let msb = state.get(self.width - 1);
                let mut next = state.shl1();
                if msb {
                    next = &next ^ &self.taps;
                }
                next
            }
        }
    }
}

impl PatternGenerator for Lfsr {
    fn width(&self) -> usize {
        self.width
    }

    fn name(&self) -> &str {
        &self.name
    }

    /// Expands to `[δ, step(δ), step²(δ), …]` — `τ + 1` patterns. `θ` is
    /// ignored by the single-polynomial LFSR.
    fn expand(&self, triplet: &Triplet) -> Vec<BitVec> {
        assert_eq!(triplet.width(), self.width, "triplet width mismatch");
        let mut out = Vec::with_capacity(triplet.pattern_count());
        let mut state = triplet.delta().clone();
        out.push(state.clone());
        for _ in 0..triplet.tau() {
            state = self.step(&state);
            out.push(state.clone());
        }
        out
    }

    fn seed_for(&self, pattern: &BitVec, _word_source: &mut dyn FnMut() -> u64) -> Triplet {
        assert_eq!(pattern.width(), self.width, "pattern width mismatch");
        Triplet::new(pattern.clone(), BitVec::zeros(self.width), 0)
    }
}

/// A multiple-polynomial LFSR: `θ` selects the feedback polynomial.
///
/// This is the Hellebrand scheme: storing a few polynomial-id bits next to
/// each seed dramatically improves the encoding flexibility. Here the
/// selector is `θ mod #polynomials`.
///
/// # Example
///
/// ```
/// use fbist_tpg::{MultiPolyLfsr, PatternGenerator, Triplet};
/// use fbist_bits::BitVec;
///
/// let mp = MultiPolyLfsr::standard_bank(8, 4); // 4 polynomials
/// let t = Triplet::new(BitVec::from_u64(8, 0x80), BitVec::from_u64(8, 2), 5);
/// assert_eq!(mp.expand(&t).len(), 6);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultiPolyLfsr {
    width: usize,
    banks: Vec<Lfsr>,
    name: String,
}

impl MultiPolyLfsr {
    /// Creates a multiple-polynomial LFSR from explicit banks.
    ///
    /// # Panics
    ///
    /// Panics if `banks` is empty or widths disagree.
    pub fn new(banks: Vec<Lfsr>) -> MultiPolyLfsr {
        assert!(!banks.is_empty(), "at least one polynomial required");
        let width = banks[0].width;
        assert!(
            banks.iter().all(|b| b.width == width),
            "all banks must share one width"
        );
        MultiPolyLfsr {
            width,
            banks,
            name: "mplfsr".to_owned(),
        }
    }

    /// Builds a bank of `count` distinct polynomials for the given width:
    /// the default polynomial plus rotations of its tap mask (deterministic
    /// and cheap; not necessarily primitive).
    pub fn standard_bank(width: usize, count: usize) -> MultiPolyLfsr {
        assert!(count >= 1);
        let base = default_taps(width);
        let mut banks = Vec::with_capacity(count);
        let mut taps = base;
        for _ in 0..count {
            banks.push(Lfsr::new(width, taps.clone(), LfsrKind::Fibonacci));
            // rotate-left the mask and force the x^0 coefficient so the
            // polynomial stays non-degenerate
            taps = taps.shl1();
            taps.set(0, true);
        }
        MultiPolyLfsr::new(banks)
    }

    /// Number of polynomials in the bank.
    pub fn bank_count(&self) -> usize {
        self.banks.len()
    }

    /// The bank selected by a given `θ`.
    pub fn bank_for(&self, theta: &BitVec) -> &Lfsr {
        let sel = theta.as_words().first().copied().unwrap_or(0) as usize % self.banks.len();
        &self.banks[sel]
    }
}

impl PatternGenerator for MultiPolyLfsr {
    fn width(&self) -> usize {
        self.width
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn expand(&self, triplet: &Triplet) -> Vec<BitVec> {
        assert_eq!(triplet.width(), self.width, "triplet width mismatch");
        self.bank_for(triplet.theta()).expand(triplet)
    }

    fn seed_for(&self, pattern: &BitVec, word_source: &mut dyn FnMut() -> u64) -> Triplet {
        assert_eq!(pattern.width(), self.width, "pattern width mismatch");
        // free choice: pick a random bank so different triplets explore
        // different polynomials
        let sel = word_source() % self.banks.len() as u64;
        Triplet::new(pattern.clone(), BitVec::from_u64(self.width, sel), 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fibonacci_3bit_full_period() {
        let lfsr = Lfsr::maximal(3);
        let mut state = BitVec::from_u64(3, 1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..7 {
            seen.insert(state.to_u64().unwrap());
            state = lfsr.step(&state);
        }
        assert_eq!(seen.len(), 7, "period-7 maximal sequence");
        assert_eq!(state.to_u64(), Some(1), "returns to seed after 7 steps");
    }

    #[test]
    fn galois_4bit_full_period() {
        let lfsr = Lfsr::new(4, BitVec::from_u64(4, 0b0011), LfsrKind::Galois);
        let mut state = BitVec::from_u64(4, 1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..15 {
            seen.insert(state.to_u64().unwrap());
            state = lfsr.step(&state);
        }
        assert_eq!(seen.len(), 15);
    }

    #[test]
    fn zero_state_is_fixed_point() {
        for kind in [LfsrKind::Fibonacci, LfsrKind::Galois] {
            let lfsr = Lfsr::new(8, default_taps(8), kind);
            let z = BitVec::zeros(8);
            assert!(lfsr.step(&z).is_zero(), "{kind:?}");
        }
    }

    #[test]
    fn seed_for_contract() {
        let lfsr = Lfsr::maximal(16);
        let p = BitVec::from_u64(16, 0xBEEF);
        let t = lfsr.seed_for(&p, &mut || 1);
        assert_eq!(lfsr.expand(&t), vec![p]);
    }

    #[test]
    fn mp_lfsr_banks_differ() {
        let mp = MultiPolyLfsr::standard_bank(8, 4);
        assert_eq!(mp.bank_count(), 4);
        let seed = BitVec::from_u64(8, 0x35);
        let mut sequences = Vec::new();
        for sel in 0..4u64 {
            let t = Triplet::new(seed.clone(), BitVec::from_u64(8, sel), 6);
            sequences.push(mp.expand(&t));
        }
        // at least two banks must produce different sequences
        assert!(
            sequences.windows(2).any(|w| w[0] != w[1]),
            "all banks identical"
        );
        // all start at the seed
        for s in &sequences {
            assert_eq!(s[0], seed);
        }
    }

    #[test]
    fn mp_seed_for_contract() {
        let mp = MultiPolyLfsr::standard_bank(12, 3);
        let mut s = 99u64;
        let mut src = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            s
        };
        let p = BitVec::from_u64(12, 0x456);
        let t = mp.seed_for(&p, &mut src);
        assert_eq!(t.tau(), 0);
        assert_eq!(mp.expand(&t), vec![p]);
    }

    #[test]
    fn theta_selector_wraps() {
        let mp = MultiPolyLfsr::standard_bank(8, 3);
        let a = mp.bank_for(&BitVec::from_u64(8, 1));
        let b = mp.bank_for(&BitVec::from_u64(8, 4)); // 4 mod 3 == 1
        assert_eq!(a, b);
    }

    #[test]
    fn wide_lfsr_steps() {
        // 80-bit LFSR exercises multi-word shifting and parity
        let lfsr = Lfsr::new(
            80,
            {
                let mut t = BitVec::zeros(80);
                t.set(0, true);
                t.set(9, true);
                t.set(79, true);
                t
            },
            LfsrKind::Fibonacci,
        );
        let mut state = BitVec::from_u64(80, 1);
        for _ in 0..100 {
            state = lfsr.step(&state);
        }
        assert!(!state.is_zero());
        assert_eq!(state.width(), 80);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn width_one_rejected() {
        let _ = Lfsr::maximal(1);
    }

    #[test]
    #[should_panic(expected = "all-zero tap mask")]
    fn zero_tap_mask_rejected() {
        let _ = Lfsr::new(8, BitVec::zeros(8), LfsrKind::Fibonacci);
    }

    #[test]
    #[should_panic(expected = "all-zero tap mask")]
    fn zero_tap_mask_rejected_for_galois() {
        let _ = Lfsr::new(8, BitVec::zeros(8), LfsrKind::Galois);
    }

    #[test]
    fn standard_bank_never_degenerates() {
        // the rotating bank constructor forces the x^0 coefficient, so no
        // width/count combination can reach the all-zero-taps panic
        for width in [2usize, 3, 8, 16, 33, 80] {
            for count in [1usize, 4, 8] {
                let mp = MultiPolyLfsr::standard_bank(width, count);
                assert_eq!(mp.bank_count(), count);
            }
        }
    }

    #[test]
    fn tabulated_taps_are_maximal_up_to_16_bits() {
        for width in 2..=16usize {
            let lfsr = Lfsr::maximal(width);
            let mut state = BitVec::from_u64(width, 1);
            let target = (1u64 << width) - 1;
            let mut period = 0u64;
            loop {
                state = lfsr.step(&state);
                period += 1;
                if state.to_u64() == Some(1) {
                    break;
                }
                assert!(period <= target, "width {width}: period exceeds 2^w-1");
            }
            assert_eq!(period, target, "width {width} is not maximal");
        }
    }
}
