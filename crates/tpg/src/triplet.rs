//! The reseeding triplet `(δ, θ, τ)`.

use std::fmt;

use fbist_bits::BitVec;

/// One reseeding triplet: state seed `δ`, input seed `θ` and evolution
/// length `τ`.
///
/// A triplet fully determines one test subsequence of a
/// [`PatternGenerator`](crate::PatternGenerator): load `δ` into the state
/// register, `θ` into the input register, clock `τ` times. By this
/// workspace's convention the expansion has `τ + 1` patterns (the initial
/// register content is applied to the UUT too; see the crate docs).
///
/// ```
/// use fbist_tpg::Triplet;
/// use fbist_bits::BitVec;
///
/// let t = Triplet::new(BitVec::from_u64(8, 1), BitVec::from_u64(8, 2), 10);
/// assert_eq!(t.pattern_count(), 11);
/// assert_eq!(t.rom_bits(8), 8 + 8 + 8); // δ + θ + one τ field of 8 bits
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Triplet {
    delta: BitVec,
    theta: BitVec,
    tau: usize,
}

impl Triplet {
    /// Creates a triplet.
    ///
    /// # Panics
    ///
    /// Panics if `delta` and `theta` have different widths — they are
    /// registers of the same datapath.
    pub fn new(delta: BitVec, theta: BitVec, tau: usize) -> Triplet {
        assert_eq!(
            delta.width(),
            theta.width(),
            "delta and theta must have the generator's width"
        );
        Triplet { delta, theta, tau }
    }

    /// The state-register seed `δ`.
    pub fn delta(&self) -> &BitVec {
        &self.delta
    }

    /// The input-register seed `θ`.
    pub fn theta(&self) -> &BitVec {
        &self.theta
    }

    /// The evolution length `τ` (clock cycles after the initial pattern).
    pub fn tau(&self) -> usize {
        self.tau
    }

    /// Register width in bits.
    pub fn width(&self) -> usize {
        self.delta.width()
    }

    /// Number of patterns this triplet expands to (`τ + 1`).
    pub fn pattern_count(&self) -> usize {
        self.tau + 1
    }

    /// Returns a copy with a different `τ`.
    pub fn with_tau(&self, tau: usize) -> Triplet {
        Triplet {
            delta: self.delta.clone(),
            theta: self.theta.clone(),
            tau,
        }
    }

    /// ROM bits needed to store this triplet when `τ` is stored in a field
    /// of `tau_bits` bits: `|δ| + |θ| + tau_bits`.
    ///
    /// This is the paper's area-overhead unit: a reseeding solution of `K`
    /// triplets costs `K × rom_bits` of seed storage.
    pub fn rom_bits(&self, tau_bits: usize) -> usize {
        self.delta.width() + self.theta.width() + tau_bits
    }
}

impl fmt::Display for Triplet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "(δ={:x}, θ={:x}, τ={})",
            self.delta, self.theta, self.tau
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let t = Triplet::new(BitVec::from_u64(4, 3), BitVec::from_u64(4, 5), 7);
        assert_eq!(t.delta().to_u64(), Some(3));
        assert_eq!(t.theta().to_u64(), Some(5));
        assert_eq!(t.tau(), 7);
        assert_eq!(t.width(), 4);
        assert_eq!(t.pattern_count(), 8);
    }

    #[test]
    #[should_panic(expected = "width")]
    fn width_mismatch_panics() {
        let _ = Triplet::new(BitVec::zeros(4), BitVec::zeros(5), 0);
    }

    #[test]
    fn with_tau_copies() {
        let t = Triplet::new(BitVec::zeros(4), BitVec::ones(4), 1);
        let t2 = t.with_tau(9);
        assert_eq!(t2.tau(), 9);
        assert_eq!(t2.theta(), t.theta());
        assert_eq!(t.tau(), 1);
    }

    #[test]
    fn rom_accounting() {
        let t = Triplet::new(BitVec::zeros(16), BitVec::zeros(16), 100);
        assert_eq!(t.rom_bits(7), 39);
    }

    #[test]
    fn display_is_informative() {
        let t = Triplet::new(BitVec::from_u64(8, 0xAB), BitVec::from_u64(8, 0x01), 2);
        let s = t.to_string();
        assert!(s.contains("ab") && s.contains("τ=2"), "{s}");
    }
}
