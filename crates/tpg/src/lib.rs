//! Functional-BIST test pattern generators (TPGs).
//!
//! In functional BIST an existing datapath module — typically an
//! accumulator built around an adder, subtracter or multiplier — is reused
//! as the test pattern generator for a functionally connected unit under
//! test. A *reseeding triplet* `(δ, θ, τ)` initialises the TPG's state
//! register to `δ` and its input register to `θ`, then clocks it for `τ`
//! cycles; the sequence of values appearing at its output is the test set
//! of that triplet.
//!
//! This crate provides:
//!
//! * [`Triplet`] — the `(δ, θ, τ)` seed value;
//! * [`PatternGenerator`] — the object-safe expansion interface
//!   (`triplet → pattern sequence`) shared by all TPGs;
//! * [`AccumulatorTpg`] — the paper's three TPGs (adder / subtracter /
//!   multiplier accumulators) over arbitrary-width modular arithmetic;
//! * [`Lfsr`] / [`MultiPolyLfsr`] — classical LFSR reseeding
//!   (Fibonacci/Galois, single or multiple polynomials à la Hellebrand);
//! * [`WeightedTpg`] — a weighted-pseudo-random generator, used as an
//!   extension baseline.
//!
//! # Expansion convention
//!
//! The paper fixes `θᵢ = pᵢ` (an ATPG pattern) and observes that with
//! `τ = 0` the reseeding's test set *is* the ATPG test set. Every generator
//! here honours the contract:
//!
//! > `g.expand(&g.seed_for(p, rng))` with `τ = 0` yields exactly `[p]`.
//!
//! For accumulators the first emitted pattern is `θ` (the input register is
//! applied to the UUT before evolution starts); for LFSRs it is `δ` (the
//! seed itself), with `θ` selecting the feedback polynomial.
//!
//! # Example
//!
//! ```
//! use fbist_tpg::{AccumulatorTpg, AccumulatorOp, PatternGenerator, Triplet};
//! use fbist_bits::BitVec;
//!
//! let tpg = AccumulatorTpg::new(8, AccumulatorOp::Add);
//! let t = Triplet::new(BitVec::from_u64(8, 200), BitVec::from_u64(8, 30), 3);
//! let ts = tpg.expand(&t);
//! // [θ, δ+θ, δ+2θ, δ+3θ] mod 256  =  [30, 230, 4, 34]
//! let vals: Vec<u64> = ts.iter().map(|p| p.to_u64().unwrap()).collect();
//! assert_eq!(vals, vec![30, 230, 4, 34]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod accumulator;
mod generator;
mod lfsr;
mod triplet;
mod weighted;

pub use accumulator::{AccumulatorOp, AccumulatorTpg};
pub use generator::PatternGenerator;
pub use lfsr::{Lfsr, LfsrKind, MultiPolyLfsr};
pub use triplet::Triplet;
pub use weighted::WeightedTpg;
