//! The pattern-generator abstraction.

use fbist_bits::BitVec;

use crate::triplet::Triplet;

/// A deterministic test pattern generator that expands reseeding triplets
/// into pattern sequences.
///
/// Implementations model the *functional* behaviour of the hardware module
/// used as TPG — the actual netlist of the module is irrelevant to the
/// reseeding computation, which only needs the emitted sequences (this is
/// exactly the paper's "behavioral description of the TPG" input).
///
/// # Contract
///
/// For every pattern `p` of the generator's width and any word source:
///
/// * `seed_for(p, src)` returns a triplet `t` with `t.tau() == 0`, and
/// * `expand(&t)` is exactly `[p]`.
///
/// This is what makes the paper's initial-reseeding construction work: one
/// triplet per ATPG pattern with `τ = 0` reproduces `ATPGTS` verbatim.
/// `expand` must always return `triplet.tau() + 1` patterns.
///
/// The trait is object-safe; the reseeding flow stores TPGs as
/// `Box<dyn PatternGenerator>`. Implementations must be `Send + Sync`:
/// the parallel Detection-Matrix builder shares one generator across the
/// worker pool (expansion is a pure function of the triplet, so this costs
/// implementations nothing — they are plain data).
pub trait PatternGenerator: Send + Sync {
    /// Register/pattern width in bits.
    fn width(&self) -> usize;

    /// Short human-readable name (used in reports and tables, e.g.
    /// `"add"`, `"mul"`, `"lfsr"`).
    fn name(&self) -> &str;

    /// Expands a triplet into its `τ + 1` test patterns.
    ///
    /// # Panics
    ///
    /// Implementations panic if the triplet width differs from
    /// [`width`](PatternGenerator::width).
    fn expand(&self, triplet: &Triplet) -> Vec<BitVec>;

    /// Builds a `τ = 0` triplet whose expansion is exactly `[pattern]`.
    ///
    /// `word_source` provides entropy for the parts of the triplet that the
    /// contract leaves free (e.g. the accumulator's random `δ`).
    ///
    /// # Panics
    ///
    /// Implementations panic if the pattern width differs from
    /// [`width`](PatternGenerator::width).
    fn seed_for(&self, pattern: &BitVec, word_source: &mut dyn FnMut() -> u64) -> Triplet;
}

impl<T: PatternGenerator + ?Sized> PatternGenerator for Box<T> {
    fn width(&self) -> usize {
        (**self).width()
    }

    fn name(&self) -> &str {
        (**self).name()
    }

    fn expand(&self, triplet: &Triplet) -> Vec<BitVec> {
        (**self).expand(triplet)
    }

    fn seed_for(&self, pattern: &BitVec, word_source: &mut dyn FnMut() -> u64) -> Triplet {
        (**self).seed_for(pattern, word_source)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AccumulatorOp, AccumulatorTpg};

    #[test]
    fn trait_is_object_safe() {
        let g: Box<dyn PatternGenerator> = Box::new(AccumulatorTpg::new(4, AccumulatorOp::Add));
        assert_eq!(g.width(), 4);
        let t = g.seed_for(&BitVec::from_u64(4, 9), &mut || 42);
        assert_eq!(g.expand(&t), vec![BitVec::from_u64(4, 9)]);
    }
}
