//! Weighted pseudo-random TPG (extension baseline).

use fbist_bits::BitVec;

use crate::generator::PatternGenerator;
use crate::triplet::Triplet;

/// A weighted pseudo-random pattern generator.
///
/// Models a weighted-random BIST source: after emitting `θ` (the paper's
/// convention for cycle 0), each subsequent pattern is drawn from a
/// deterministic pseudo-random stream keyed by `(δ, θ, cycle)`, with each
/// bit biased to 1 with probability `weight_num / 8` (weights quantised to
/// eighths, as hardware weighting networks typically are).
///
/// This TPG is not part of the paper's evaluation; it serves as an extra
/// point of comparison in the ablation benchmarks (how much do *arithmetic*
/// sequences matter versus plain biased noise?).
///
/// # Example
///
/// ```
/// use fbist_tpg::{WeightedTpg, PatternGenerator, Triplet};
/// use fbist_bits::BitVec;
///
/// let tpg = WeightedTpg::new(16, 4); // unbiased (4/8)
/// let t = Triplet::new(BitVec::zeros(16), BitVec::from_u64(16, 0xF0F0), 8);
/// let ts = tpg.expand(&t);
/// assert_eq!(ts.len(), 9);
/// assert_eq!(ts[0].to_u64(), Some(0xF0F0)); // θ first
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WeightedTpg {
    width: usize,
    weight_num: u8,
    name: String,
}

impl WeightedTpg {
    /// Creates a weighted TPG; `weight_num / 8` is the per-bit probability
    /// of 1 (so `4` is unbiased, `7` is strongly one-weighted).
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= weight_num <= 7`.
    pub fn new(width: usize, weight_num: u8) -> WeightedTpg {
        assert!(
            (1..=7).contains(&weight_num),
            "weight must be in 1..=7 eighths"
        );
        WeightedTpg {
            width,
            weight_num,
            name: format!("wrand{weight_num}"),
        }
    }

    /// The weight numerator (probability of 1 = `weight() / 8`).
    pub fn weight(&self) -> u8 {
        self.weight_num
    }

    // Reference scalar generator: the executable definition of the stream
    // that the word-at-a-time `pattern_at` below must reproduce exactly
    // (only the pinning test calls it).
    #[allow(dead_code)]
    fn keyed_word(&self, delta: &BitVec, theta: &BitVec, cycle: u64, word: u64) -> u64 {
        // SplitMix64 over a key mixing the seeds, the cycle and the word
        // index — deterministic, platform-independent expansion.
        let d0 = delta.as_words().first().copied().unwrap_or(0);
        let t0 = theta.as_words().first().copied().unwrap_or(0);
        let mut z = d0
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add(t0.rotate_left(17))
            .wrapping_add(cycle.wrapping_mul(0xBF58476D1CE4E5B9))
            .wrapping_add(word.wrapping_mul(0x94D049BB133111EB));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Deterministically generates the pattern for one evolution cycle.
    ///
    /// Bit `i` is drawn from [`keyed_word`](Self::keyed_word)`(…, i)` —
    /// but instead of one keyed call and one `BitVec::set` per bit, the
    /// per-pattern part of the key is hoisted out and the bits are
    /// produced 64 at a time: the inner loop's iterations are independent
    /// (each mixes `base + i·C` with two SplitMix64 rounds and compares 3
    /// low bits against the weight threshold), so the autovectorizer can
    /// run several lanes per instruction. The stream is bit-identical to
    /// the per-bit path (pinned by `matches_per_bit_reference`).
    fn pattern_at(&self, delta: &BitVec, theta: &BitVec, cycle: u64) -> BitVec {
        let d0 = delta.as_words().first().copied().unwrap_or(0);
        let t0 = theta.as_words().first().copied().unwrap_or(0);
        let base = d0
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add(t0.rotate_left(17))
            .wrapping_add(cycle.wrapping_mul(0xBF58476D1CE4E5B9));
        let threshold = self.weight_num as u64;
        let words = fbist_bits::words_for(self.width);
        let mut out = vec![0u64; words];
        // strength-reduced per-bit key: base + i·C is an arithmetic
        // sequence, so one running add replaces the per-bit multiply; four
        // independent mix chains per step keep the multiplier pipelined
        let mix = |mut z: u64| {
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^= z >> 31;
            // borrow trick: (z & 7) < threshold iff the subtraction
            // wraps, i.e. the difference's sign bit is set
            (z & 0b111).wrapping_sub(threshold) >> 63
        };
        let mut key = base;
        for (wi, w) in out.iter_mut().enumerate() {
            // only the live bits of the last word are generated; lanes at
            // or past `width` are masked off by the BitVec constructor
            let live = (self.width - wi * 64).min(64) as u64;
            let mut acc = 0u64;
            let mut b = 0u64;
            while b < live {
                let z0 = mix(key);
                let z1 = mix(key.wrapping_add(0x94D049BB133111EB));
                let z2 = mix(key.wrapping_add(0x94D049BB133111EBu64.wrapping_mul(2)));
                let z3 = mix(key.wrapping_add(0x94D049BB133111EBu64.wrapping_mul(3)));
                key = key.wrapping_add(0x94D049BB133111EBu64.wrapping_mul(4));
                acc |= (z0 | (z1 << 1) | (z2 << 2) | (z3 << 3)) << b;
                b += 4;
            }
            key = key.wrapping_add(0x94D049BB133111EBu64.wrapping_mul(64 - b));
            *w = acc;
        }
        BitVec::from_word_vec(self.width, out)
    }
}

impl PatternGenerator for WeightedTpg {
    fn width(&self) -> usize {
        self.width
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn expand(&self, triplet: &Triplet) -> Vec<BitVec> {
        assert_eq!(triplet.width(), self.width, "triplet width mismatch");
        let mut out = Vec::with_capacity(triplet.pattern_count());
        out.push(triplet.theta().clone());
        for j in 0..triplet.tau() as u64 {
            out.push(self.pattern_at(triplet.delta(), triplet.theta(), j + 1));
        }
        out
    }

    fn seed_for(&self, pattern: &BitVec, word_source: &mut dyn FnMut() -> u64) -> Triplet {
        assert_eq!(pattern.width(), self.width, "pattern width mismatch");
        let delta = BitVec::random_with(self.width, &mut *word_source);
        Triplet::new(delta, pattern.clone(), 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_per_bit_reference() {
        // the word-at-a-time generator must reproduce the original
        // bit-at-a-time stream exactly, for widths off the word boundary
        for width in [1usize, 7, 63, 64, 65, 128, 130] {
            for weight in [1u8, 4, 7] {
                let tpg = WeightedTpg::new(width, weight);
                let delta = BitVec::from_u64(width, 0xDEAD_BEEF_1234_5678);
                let theta = BitVec::from_u64(width, 0x0F1E_2D3C_4B5A_6978);
                for cycle in [1u64, 2, 17, 255] {
                    let fast = tpg.pattern_at(&delta, &theta, cycle);
                    let mut slow = BitVec::zeros(width);
                    for i in 0..width {
                        let w = tpg.keyed_word(&delta, &theta, cycle, i as u64);
                        if ((w & 0b111) as u8) < weight {
                            slow.set(i, true);
                        }
                    }
                    assert_eq!(fast, slow, "width {width} weight {weight} cycle {cycle}");
                }
            }
        }
    }

    #[test]
    fn deterministic_expansion() {
        let tpg = WeightedTpg::new(32, 4);
        let t = Triplet::new(BitVec::from_u64(32, 5), BitVec::from_u64(32, 6), 20);
        assert_eq!(tpg.expand(&t), tpg.expand(&t));
    }

    #[test]
    fn different_seeds_different_streams() {
        let tpg = WeightedTpg::new(32, 4);
        let a = Triplet::new(BitVec::from_u64(32, 5), BitVec::from_u64(32, 6), 20);
        let b = Triplet::new(BitVec::from_u64(32, 7), BitVec::from_u64(32, 6), 20);
        assert_ne!(tpg.expand(&a)[1..], tpg.expand(&b)[1..]);
    }

    #[test]
    fn weight_biases_density() {
        let heavy = WeightedTpg::new(64, 7);
        let light = WeightedTpg::new(64, 1);
        let t = Triplet::new(BitVec::from_u64(64, 1), BitVec::from_u64(64, 2), 50);
        let ones = |tpg: &WeightedTpg| -> usize {
            tpg.expand(&t)[1..].iter().map(|p| p.count_ones()).sum()
        };
        let h = ones(&heavy);
        let l = ones(&light);
        assert!(h > l * 3, "heavy {h} vs light {l}");
    }

    #[test]
    fn seed_for_contract() {
        let tpg = WeightedTpg::new(24, 2);
        let p = BitVec::from_u64(24, 0xABCDE);
        let t = tpg.seed_for(&p, &mut || 31337);
        assert_eq!(tpg.expand(&t), vec![p]);
    }

    #[test]
    #[should_panic(expected = "weight")]
    fn zero_weight_rejected() {
        let _ = WeightedTpg::new(8, 0);
    }
}
