//! Accumulator-based TPGs: the paper's adder, subtracter and multiplier
//! units.

use fbist_bits::BitVec;

use crate::generator::PatternGenerator;
use crate::triplet::Triplet;

/// The arithmetic function of the accumulator datapath.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccumulatorOp {
    /// `S ← S + θ (mod 2^w)` — adder-based accumulator.
    Add,
    /// `S ← S − θ (mod 2^w)` — subtracter-based accumulator.
    Sub,
    /// `S ← S × θ (mod 2^w)` — multiplier-based accumulator.
    Mul,
}

impl AccumulatorOp {
    /// All three paper TPG flavours, in Table-1 order.
    pub const ALL: [AccumulatorOp; 3] =
        [AccumulatorOp::Add, AccumulatorOp::Sub, AccumulatorOp::Mul];

    /// Short name used in tables (`add` / `sub` / `mul`).
    pub fn name(self) -> &'static str {
        match self {
            AccumulatorOp::Add => "add",
            AccumulatorOp::Sub => "sub",
            AccumulatorOp::Mul => "mul",
        }
    }

    /// Applies the operation.
    pub fn apply(self, state: &BitVec, theta: &BitVec) -> BitVec {
        match self {
            AccumulatorOp::Add => state.wrapping_add(theta),
            AccumulatorOp::Sub => state.wrapping_sub(theta),
            AccumulatorOp::Mul => state.wrapping_mul(theta),
        }
    }
}

impl std::fmt::Display for AccumulatorOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// An accumulator-based test pattern generator.
///
/// The module has a `w`-bit state register `S` (the accumulator) and a
/// `w`-bit input register `θ`. Each clock cycle computes
/// `S ← S ∘ θ (mod 2^w)` with `∘ ∈ {+, −, ×}`; the accumulator output
/// drives the UUT inputs.
///
/// Expansion of `(δ, θ, τ)` follows the paper's convention (see the crate
/// docs): the input register content `θ` is applied to the UUT first, then
/// the accumulator — initialised to `δ` — evolves for `τ` cycles:
///
/// ```text
/// TS = [ θ, S₁, S₂, …, S_τ ]    S₀ = δ,  S_{j+1} = S_j ∘ θ
/// ```
///
/// # Example
///
/// ```
/// use fbist_tpg::{AccumulatorTpg, AccumulatorOp, PatternGenerator, Triplet};
/// use fbist_bits::BitVec;
///
/// let sub = AccumulatorTpg::new(8, AccumulatorOp::Sub);
/// let t = Triplet::new(BitVec::from_u64(8, 10), BitVec::from_u64(8, 3), 2);
/// let vals: Vec<u64> = sub.expand(&t).iter().map(|p| p.to_u64().unwrap()).collect();
/// assert_eq!(vals, vec![3, 7, 4]); // θ, 10-3, 7-3
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccumulatorTpg {
    width: usize,
    op: AccumulatorOp,
    name: String,
}

impl AccumulatorTpg {
    /// Creates an accumulator TPG of the given width and operation.
    pub fn new(width: usize, op: AccumulatorOp) -> AccumulatorTpg {
        AccumulatorTpg {
            width,
            op,
            name: op.name().to_owned(),
        }
    }

    /// The arithmetic operation.
    pub fn op(&self) -> AccumulatorOp {
        self.op
    }

    /// One evolution step `S ∘ θ`.
    pub fn step(&self, state: &BitVec, theta: &BitVec) -> BitVec {
        self.op.apply(state, theta)
    }
}

impl PatternGenerator for AccumulatorTpg {
    fn width(&self) -> usize {
        self.width
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn expand(&self, triplet: &Triplet) -> Vec<BitVec> {
        assert_eq!(triplet.width(), self.width, "triplet width mismatch");
        let mut out = Vec::with_capacity(triplet.pattern_count());
        out.push(triplet.theta().clone());
        let mut state = triplet.delta().clone();
        for _ in 0..triplet.tau() {
            state = self.op.apply(&state, triplet.theta());
            out.push(state.clone());
        }
        out
    }

    fn seed_for(&self, pattern: &BitVec, word_source: &mut dyn FnMut() -> u64) -> Triplet {
        assert_eq!(pattern.width(), self.width, "pattern width mismatch");
        let delta = BitVec::random_with(self.width, &mut *word_source);
        Triplet::new(delta, pattern.clone(), 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xorshift(seed: u64) -> impl FnMut() -> u64 {
        let mut s = seed | 1;
        move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        }
    }

    #[test]
    fn add_expansion_arithmetic() {
        let tpg = AccumulatorTpg::new(16, AccumulatorOp::Add);
        let t = Triplet::new(BitVec::from_u64(16, 0xFFF0), BitVec::from_u64(16, 0x20), 3);
        let vals: Vec<u64> = tpg.expand(&t).iter().map(|p| p.to_u64().unwrap()).collect();
        assert_eq!(vals, vec![0x20, 0x10, 0x30, 0x50]); // wraps at 2^16
    }

    #[test]
    fn sub_expansion_arithmetic() {
        let tpg = AccumulatorTpg::new(8, AccumulatorOp::Sub);
        let t = Triplet::new(BitVec::from_u64(8, 1), BitVec::from_u64(8, 2), 2);
        let vals: Vec<u64> = tpg.expand(&t).iter().map(|p| p.to_u64().unwrap()).collect();
        assert_eq!(vals, vec![2, 255, 253]); // 1-2 wraps to 255
    }

    #[test]
    fn mul_expansion_arithmetic() {
        let tpg = AccumulatorTpg::new(8, AccumulatorOp::Mul);
        let t = Triplet::new(BitVec::from_u64(8, 3), BitVec::from_u64(8, 5), 3);
        let vals: Vec<u64> = tpg.expand(&t).iter().map(|p| p.to_u64().unwrap()).collect();
        assert_eq!(vals, vec![5, 15, 75, (75 * 5) % 256]);
    }

    #[test]
    fn tau_zero_reproduces_pattern() {
        for op in AccumulatorOp::ALL {
            let tpg = AccumulatorTpg::new(80, op);
            let mut src = xorshift(7 + op.name().len() as u64);
            let p = BitVec::random_with(80, &mut src);
            let t = tpg.seed_for(&p, &mut src);
            assert_eq!(t.tau(), 0);
            assert_eq!(tpg.expand(&t), vec![p.clone()], "{op}");
        }
    }

    #[test]
    fn expansion_length_is_tau_plus_one() {
        let tpg = AccumulatorTpg::new(8, AccumulatorOp::Add);
        for tau in [0usize, 1, 5, 63] {
            let t = Triplet::new(BitVec::from_u64(8, 7), BitVec::from_u64(8, 9), tau);
            assert_eq!(tpg.expand(&t).len(), tau + 1);
        }
    }

    #[test]
    fn mul_by_even_theta_converges_to_zero() {
        // a known degeneracy of multiplier accumulators the paper's Table 1
        // reflects (multiplier TPGs often need different seeds)
        let tpg = AccumulatorTpg::new(8, AccumulatorOp::Mul);
        let t = Triplet::new(BitVec::from_u64(8, 0xFF), BitVec::from_u64(8, 2), 8);
        let ts = tpg.expand(&t);
        assert!(ts.last().unwrap().is_zero());
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn width_mismatch_panics() {
        let tpg = AccumulatorTpg::new(8, AccumulatorOp::Add);
        let t = Triplet::new(BitVec::zeros(9), BitVec::zeros(9), 0);
        let _ = tpg.expand(&t);
    }

    #[test]
    fn names_match_table_order() {
        let names: Vec<&str> = AccumulatorOp::ALL.iter().map(|o| o.name()).collect();
        assert_eq!(names, vec!["add", "sub", "mul"]);
    }
}
