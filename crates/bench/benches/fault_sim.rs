//! Fault-simulation throughput: the packed event-driven simulator vs. the
//! naive per-(fault, pattern) reference, plus good-circuit simulation
//!(packed vs. event-driven). The paper's efficiency argument rests on
//! fault simulation being cheap enough to build the whole Detection
//! Matrix; this bench quantifies the engine that makes it so.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fbist_bits::BitVec;
use fbist_fault::{reference, FaultList, FaultSimulator};
use fbist_genbench::{generate, profile};
use fbist_netlist::embedded;
use fbist_sim::{EventSimulator, PackedSimulator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn patterns(width: usize, count: usize, seed: u64) -> Vec<BitVec> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| BitVec::random_with(width, &mut || rng.gen()))
        .collect()
}

fn bench_fault_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("fault_sim");
    group.sample_size(10);
    for name in ["c499", "c880", "s1238"] {
        let p = profile(name).unwrap().scaled(0.3);
        let n = generate(&p, 1);
        let faults = FaultList::collapsed(&n);
        let sim = FaultSimulator::new(&n).unwrap();
        let pats = patterns(n.inputs().len(), 64, 5);
        group.bench_with_input(
            BenchmarkId::new("packed_event_driven", name),
            &(&sim, &pats, &faults),
            |b, (sim, pats, faults)| b.iter(|| sim.detects(pats, faults)),
        );
    }
    group.finish();
}

fn bench_fault_sim_vs_naive(c: &mut Criterion) {
    // naive is only feasible on c17-sized circuits
    let n = embedded::c17();
    let faults = FaultList::collapsed(&n);
    let sim = FaultSimulator::new(&n).unwrap();
    let pats = patterns(5, 32, 9);
    let mut group = c.benchmark_group("fault_sim_vs_naive");
    group.bench_function("packed_c17_32p", |b| b.iter(|| sim.detects(&pats, &faults)));
    group.bench_function("naive_c17_32p", |b| {
        b.iter(|| {
            let mut detected = 0;
            for (_, f) in faults.iter() {
                if pats.iter().any(|p| reference::naive_detects(&n, f, p)) {
                    detected += 1;
                }
            }
            detected
        })
    });
    group.finish();
}

fn bench_logic_sim(c: &mut Criterion) {
    let p = profile("c880").unwrap().scaled(0.5);
    let n = generate(&p, 1);
    let pats = patterns(n.inputs().len(), 256, 3);
    let psim = PackedSimulator::new(&n).unwrap();
    let mut group = c.benchmark_group("logic_sim");
    group.bench_function("packed_256p", |b| b.iter(|| psim.simulate_patterns(&pats)));
    group.bench_function("event_driven_256p", |b| {
        b.iter(|| {
            let mut esim = EventSimulator::new(&n).unwrap();
            let mut ones = 0usize;
            for p in &pats {
                ones += esim.apply(p).count_ones();
            }
            ones
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fault_sim,
    bench_fault_sim_vs_naive,
    bench_logic_sim
);
criterion_main!(benches);
