//! Solver benchmarks: exact branch-and-bound vs. greedy on
//! detection-shaped instances of growing size (ablation B: the solution-
//! quality/runtime trade-off behind the paper's choice of an exact solver
//! on reduced matrices).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fbist_setcover::generate::detection_shaped;
use fbist_setcover::{greedy_cover, reduce, ExactSolver, ReducerConfig};

fn bench_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("solvers");
    group.sample_size(10);
    for &(rows, cols) in &[(30usize, 80usize), (60, 200), (120, 400)] {
        let m = detection_shaped(rows, cols, 42);
        group.bench_with_input(
            BenchmarkId::new("greedy", format!("{rows}x{cols}")),
            &m,
            |b, m| b.iter(|| greedy_cover(m)),
        );
        // exact solver on the *reduced* instance, as the flow runs it
        let red = reduce(&m, &ReducerConfig::default());
        let (sub, _) = m.submatrix(&red.active_rows, &red.active_cols);
        group.bench_with_input(
            BenchmarkId::new("exact_on_reduced", format!("{rows}x{cols}")),
            &sub,
            |b, sub| b.iter(|| ExactSolver::new().solve(sub)),
        );
    }
    group.finish();
}

fn bench_solution_quality(c: &mut Criterion) {
    // not a timing benchmark: report the quality gap once, then time the
    // exact solve that produced it
    let m = detection_shaped(80, 250, 7);
    let greedy_k = greedy_cover(&m).len();
    let exact = ExactSolver::new().solve(&m);
    eprintln!(
        "# solution quality on 80x250: greedy {} vs exact {} (optimal: {})",
        greedy_k,
        exact.rows.len(),
        exact.optimal
    );
    let mut group = c.benchmark_group("quality_instance");
    group.sample_size(10);
    group.bench_function("exact_80x250", |b| b.iter(|| ExactSolver::new().solve(&m)));
    group.finish();
}

criterion_group!(benches, bench_solvers, bench_solution_quality);
criterion_main!(benches);
