//! Serial vs. fault-parallel deterministic ATPG.
//!
//! Measures `Atpg::run` — the Phase-2 PODEM rounds fanned over the
//! `mini-rayon` pool — on the `mid256` mimic at `jobs = 1` against
//! `jobs = 4`. The two variants are bit-identical by construction
//! (asserted below before timing, and pinned for every profile by
//! `tests/atpg_equivalence.rs`), so the ratio is pure speedup — or, on a
//! single-core host, pure round/dictionary overhead, which CI's `bench`
//! job bounds at ≤8 % over serial from the `BENCH_results.json` the
//! criterion shim writes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fbist_atpg::{Atpg, AtpgConfig};
use fbist_bench::build_circuit;
use fbist_fault::FaultList;
use fbist_genbench::profile;

fn bench_atpg(c: &mut Criterion) {
    let p = profile("mid256").expect("paper-scale mimic");
    let netlist = build_circuit(&p, 1);
    let atpg = Atpg::new(&netlist).expect("combinational mimic");
    let faults = FaultList::collapsed(&netlist);

    let run = |jobs: usize| {
        atpg.run(
            &faults,
            &AtpgConfig {
                jobs,
                ..AtpgConfig::default()
            },
        )
    };
    assert_eq!(
        run(1),
        run(4),
        "parallel ATPG must be bit-identical to serial"
    );

    // fixed IDs so BENCH_results.json keys stay comparable across
    // machines with different core counts
    let mut group = c.benchmark_group("atpg");
    group.sample_size(10);
    for (label, jobs) in [("serial", 1), ("parallel", 4)] {
        group.bench_with_input(BenchmarkId::new("jobs", label), &jobs, |b, &jobs| {
            b.iter(|| run(jobs));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_atpg);
criterion_main!(benches);
