//! TPG expansion throughput (ablation C groundwork): how fast each
//! generator family turns triplets into pattern sequences. Accumulator
//! arithmetic is multi-word modular arithmetic; LFSRs are shift/parity;
//! the weighted generator hashes per bit — this bench quantifies the
//! differences across register widths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fbist_bits::BitVec;
use fbist_tpg::{
    AccumulatorOp, AccumulatorTpg, Lfsr, MultiPolyLfsr, PatternGenerator, Triplet, WeightedTpg,
};

fn triplet(width: usize, tau: usize) -> Triplet {
    Triplet::new(
        BitVec::from_u64(width, 0x9E37_79B9),
        BitVec::from_u64(width, 0x7F4A_7C15),
        tau,
    )
}

fn bench_expand(c: &mut Criterion) {
    let mut group = c.benchmark_group("tpg_expand");
    for &width in &[32usize, 128, 512] {
        let t = triplet(width, 255);
        let gens: Vec<(&str, Box<dyn PatternGenerator>)> = vec![
            (
                "add",
                Box::new(AccumulatorTpg::new(width, AccumulatorOp::Add)),
            ),
            (
                "sub",
                Box::new(AccumulatorTpg::new(width, AccumulatorOp::Sub)),
            ),
            (
                "mul",
                Box::new(AccumulatorTpg::new(width, AccumulatorOp::Mul)),
            ),
            ("lfsr", Box::new(Lfsr::maximal(width))),
            ("mplfsr", Box::new(MultiPolyLfsr::standard_bank(width, 8))),
            ("wrand", Box::new(WeightedTpg::new(width, 4))),
        ];
        for (name, g) in gens {
            group.bench_with_input(
                BenchmarkId::new(name, format!("w{width}_tau255")),
                &(&g, &t),
                |b, (g, t)| b.iter(|| g.expand(t)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_expand);
criterion_main!(benches);
