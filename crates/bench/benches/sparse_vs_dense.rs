//! Tentpole benchmark: the sparse incremental covering engine vs. the
//! dense word scans, on Detection-Matrix-shaped instances at the scale of
//! the `big3500` (≈c7552) and `xl7000` genbench stress profiles.
//!
//! Real Detection Matrices over the random-resistant target faults are
//! sparse — each triplet's test set detects a small fraction of `F` — so
//! the instances here use a 1–2 % density. The sparse greedy must beat the
//! dense greedy on the xl-scale instance: CI's `bench` job runs this
//! bench and asserts that ordering on the `BENCH_results.json` the
//! criterion shim writes (the committed baseline is refreshed by local
//! `cargo bench` runs).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fbist_setcover::generate::random_instance;
use fbist_setcover::{greedy_cover_with, reduce_with, Backend, DetectionMatrix, ReducerConfig};

/// Instances shaped like the Detection Matrices the stress profiles
/// produce: rows ≈ initial triplets, cols ≈ random-resistant faults.
fn instances() -> Vec<(&'static str, DetectionMatrix)> {
    vec![
        ("big3500ish_300x1300", random_instance(300, 1300, 0.015, 42)),
        ("xl7000ish_600x2600", random_instance(600, 2600, 0.012, 42)),
    ]
}

fn bench_greedy(c: &mut Criterion) {
    let mut group = c.benchmark_group("sparse_vs_dense_greedy");
    group.sample_size(10);
    for (name, m) in instances() {
        // the equivalence suite pins this; keep a cheap guard here so a
        // benchmark run can never silently time two different algorithms
        assert_eq!(
            greedy_cover_with(&m, Backend::Dense),
            greedy_cover_with(&m, Backend::Sparse),
            "{name}: backends disagree"
        );
        group.bench_with_input(BenchmarkId::new("dense", name), &m, |b, m| {
            b.iter(|| greedy_cover_with(m, Backend::Dense))
        });
        group.bench_with_input(BenchmarkId::new("sparse", name), &m, |b, m| {
            b.iter(|| greedy_cover_with(m, Backend::Sparse))
        });
    }
    group.finish();
}

fn bench_reduce(c: &mut Criterion) {
    let mut group = c.benchmark_group("sparse_vs_dense_reduce");
    group.sample_size(10);
    let cfg = ReducerConfig::default();
    for (name, m) in instances() {
        assert_eq!(
            reduce_with(&m, &cfg, Backend::Dense),
            reduce_with(&m, &cfg, Backend::Sparse),
            "{name}: backends disagree"
        );
        group.bench_with_input(BenchmarkId::new("dense", name), &m, |b, m| {
            b.iter(|| reduce_with(m, &cfg, Backend::Dense))
        });
        group.bench_with_input(BenchmarkId::new("sparse", name), &m, |b, m| {
            b.iter(|| reduce_with(m, &cfg, Backend::Sparse))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_greedy, bench_reduce);
criterion_main!(benches);
