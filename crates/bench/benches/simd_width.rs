//! Narrow vs. wide SIMD simulation blocks.
//!
//! Measures the batched Detection-Matrix build (`matrix_for`, the flow's
//! dominant cost) at `jobs = 1` and the default `τ = 31` with the block
//! width pinned to `W = 1` (the historical 64-lane engine) and resolved
//! by `auto` (the widest `[u64; W]` whose block count still shrinks —
//! `W = 8` on these pattern streams), on a mid-size and a c7552-scale
//! circuit. The two widths are bit-identical by construction (asserted
//! below before timing), so every ratio is pure speedup: a W-wide block
//! runs one levelised sweep where the narrow engine runs W, trading them
//! for `[u64; W]` lane arithmetic the autovectorizer lowers to 128- to
//! 512-bit SIMD.
//!
//! CI consumes the merged `BENCH_results.json` entries and fails if
//! `auto` is ever slower than `W = 1` (parity is the floor on scalar-ish
//! runners; SIMD-capable hosts see the real win).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fbist_bench::build_circuit;
use fbist_genbench::profile;
use reseed_core::{FlowConfig, InitialReseedingBuilder, MatrixBuild, SimdWidth, TpgKind};

fn bench_simd_width(c: &mut Criterion) {
    let mut group = c.benchmark_group("simd_width");
    group.sample_size(10);
    for name in ["mid256", "big3500"] {
        let p = profile(name).expect("profile registered");
        let netlist = build_circuit(&p, 1);
        let cfg = FlowConfig::new(TpgKind::Adder);
        let builder = InitialReseedingBuilder::new(&netlist).expect("combinational circuit");
        let base = builder.build(&cfg);
        let tpg = cfg.tpg.build(netlist.inputs().len());

        // batched engine: the planner hands the full cross-row lane
        // stream to the width resolver, so `auto` actually widens
        let run = |width: SimdWidth| {
            builder.matrix_for(
                tpg.as_ref(),
                &base.atpg.patterns,
                &base.target_faults,
                31,
                cfg.seed,
                1,
                MatrixBuild::Batched,
                width,
            )
        };
        assert_eq!(
            run(SimdWidth::W1).1.row_major(),
            run(SimdWidth::Auto).1.row_major(),
            "wide matrix must be bit-identical to narrow ({name})"
        );
        for (label, width) in [("w1", SimdWidth::W1), ("auto", SimdWidth::Auto)] {
            group.bench_with_input(BenchmarkId::new(label, name), &width, |b, &width| {
                b.iter(|| run(width))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_simd_width);
criterion_main!(benches);
