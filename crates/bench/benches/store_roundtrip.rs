//! Cold vs. warm artifact-store sweeps — the cache's reason to exist.
//!
//! For `mid256` and `big3500` at `jobs = 1`, over the default `fbist
//! sweep` τ list, two measurements per circuit:
//!
//! * `store_sweep/cold/…` — an *empty* store every iteration (deleted and
//!   reopened inside the timed body): the full pipeline — ATPG, one
//!   shared first-detection simulation, per-τ solve/trim — plus the
//!   write-back overhead of populating the store;
//! * `store_sweep/warm/…` — a store already holding every cover artifact:
//!   the sweep decodes its answers and simulates nothing
//!   (`matrix_sim_passes == 0`, asserted before timing).
//!
//! Warm answers are byte-identical to cold ones (also asserted before a
//! single iteration is timed), so the ratio is pure time saved. On
//! `big3500` the cold side pays the ~27 s τ-independent ATPG run plus the
//! shared simulation pass; the warm side reads a few artifacts from disk
//! — CI consumes the merged `BENCH_results.json` entries and fails if
//! warm is ever less than 10× faster than cold (the ISSUE's acceptance
//! floor; locally the gap is orders of magnitude).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fbist_bench::build_circuit;
use fbist_genbench::profile;
use fbist_store::ArtifactStore;
use reseed_core::{tradeoff_sweep_with, FlowConfig, ReseedingFlow, TpgKind};

/// The `fbist sweep` default τ list.
const TAUS: [usize; 8] = [0, 3, 7, 15, 31, 63, 127, 255];

fn bench_store_roundtrip(c: &mut Criterion) {
    for name in ["mid256", "big3500"] {
        let p = profile(name).expect("profile registered");
        let netlist = build_circuit(&p, 1);
        let dir =
            std::env::temp_dir().join(format!("fbist-bench-store-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = FlowConfig::new(TpgKind::Adder).with_jobs(1);

        // correctness gate before timing anything: the warm curve is
        // byte-identical to the cold one and simulates nothing
        let store = ArtifactStore::open(&dir).expect("temp store opens");
        let cold_flow = ReseedingFlow::with_store(&netlist, store.clone()).unwrap();
        let cold_curve = tradeoff_sweep_with(&cold_flow, &cfg, &TAUS);
        let warm_flow = ReseedingFlow::with_store(&netlist, store).unwrap();
        let warm_curve = tradeoff_sweep_with(&warm_flow, &cfg, &TAUS);
        assert_eq!(
            cold_curve, warm_curve,
            "{name}: warm sweep must be byte-identical to cold"
        );
        assert_eq!(
            warm_flow.builder().matrix_sim_passes(),
            0,
            "{name}: warm sweep must not simulate"
        );
        assert!(
            warm_flow.stages().stats().fully_warm(),
            "{name}: warm sweep must not run ATPG"
        );

        let mut group = c.benchmark_group("store_sweep");
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::new("cold", name), &(), |b, _| {
            b.iter(|| {
                let _ = std::fs::remove_dir_all(&dir);
                let store = ArtifactStore::open(&dir).expect("temp store opens");
                let flow = ReseedingFlow::with_store(&netlist, store).unwrap();
                tradeoff_sweep_with(&flow, &cfg, &TAUS)
            })
        });
        // the last cold iteration left the store fully written — warm
        // iterations read it through a fresh flow each time
        group.bench_with_input(BenchmarkId::new("warm", name), &(), |b, _| {
            b.iter(|| {
                let store = ArtifactStore::open(&dir).expect("temp store opens");
                let flow = ReseedingFlow::with_store(&netlist, store).unwrap();
                tradeoff_sweep_with(&flow, &cfg, &TAUS)
            })
        });
        group.finish();
        let _ = std::fs::remove_dir_all(&dir);
    }
}

criterion_group!(benches, bench_store_roundtrip);
criterion_main!(benches);
