//! End-to-end flow benchmarks: the full Figure-1 pipeline (ATPG → matrix →
//! reduce → exact solve → trim) and its phases, plus the set-covering vs.
//! GATSBY cost comparison the paper's §4 makes ("the number of fault
//! simulations is reduced and limited to the construction of the Detection
//! Matrix").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fbist_genbench::{generate, profile};
use reseed_core::{FlowConfig, Gatsby, GatsbyConfig, ReseedingFlow, TpgKind};

fn bench_full_flow(c: &mut Criterion) {
    let mut group = c.benchmark_group("full_flow");
    group.sample_size(10);
    for name in ["tiny64", "mid256"] {
        let p = profile(name).unwrap();
        let n = generate(&p, 1);
        let flow = ReseedingFlow::new(&n).unwrap();
        let cfg = FlowConfig::new(TpgKind::Adder).with_tau(31);
        group.bench_with_input(BenchmarkId::new("set_covering", name), &(), |b, ()| {
            b.iter(|| flow.run(&cfg))
        });
    }
    group.finish();
}

fn bench_phases(c: &mut Criterion) {
    let p = profile("mid256").unwrap();
    let n = generate(&p, 1);
    let flow = ReseedingFlow::new(&n).unwrap();
    let cfg = FlowConfig::new(TpgKind::Adder).with_tau(31);
    let initial = flow.builder().build(&cfg);

    let mut group = c.benchmark_group("flow_phases");
    group.sample_size(10);
    group.bench_function("build_initial_reseeding", |b| {
        b.iter(|| flow.builder().build(&cfg))
    });
    group.bench_function("reduce_and_solve_and_trim", |b| {
        b.iter(|| flow.finish(&cfg, &initial))
    });
    group.finish();
}

fn bench_vs_gatsby(c: &mut Criterion) {
    let p = profile("tiny64").unwrap();
    let n = generate(&p, 1);
    let flow = ReseedingFlow::new(&n).unwrap();
    let cfg = FlowConfig::new(TpgKind::Adder).with_tau(31);
    let init = flow.builder().build(&cfg);
    let gatsby = Gatsby::new(&n).unwrap();
    let gcfg = GatsbyConfig {
        tpg: TpgKind::Adder,
        tau: 31,
        ..GatsbyConfig::default()
    };

    let mut group = c.benchmark_group("sc_vs_gatsby_tiny64");
    group.sample_size(10);
    group.bench_function("set_covering_total", |b| b.iter(|| flow.run(&cfg)));
    group.bench_function("gatsby_total", |b| {
        b.iter(|| gatsby.run(&init.target_faults, &gcfg))
    });
    group.finish();
}

criterion_group!(benches, bench_full_flow, bench_phases, bench_vs_gatsby);
criterion_main!(benches);
