//! Cost of the static analyses against the ATPG wall clock they amortise.
//!
//! Two cheap passes — the full `fbist check` report and the untestability
//! pre-pass (`AtpgConfig::static_prepass`'s Phase 0) — are timed on the
//! `mid256` and `big3500` mimics, next to the `big3500` deterministic ATPG
//! run with the knob off (`atpg_wall/full`) and on (`atpg_wall/prepass`).
//! CI's push-gated `analyze-bench` job bounds the pre-pass at ≤5 % of the
//! full ATPG wall clock from the `BENCH_results.json` the criterion shim
//! writes; in practice the pre-pass *pays for itself many times over* on
//! `big3500`, because every statically-pruned fault is one PODEM would
//! otherwise burn its whole backtrack budget on before aborting.
//!
//! Before timing, the bench asserts the semantic contract pinned for every
//! profile by `tests/analyze_equivalence.rs`: identical detected set and
//! pattern list with the knob on and off, and a strict reduction of the
//! Phase-2 target count on a profile that aborts faults.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fbist_analyze::{analyze, untestable_faults};
use fbist_atpg::{Atpg, AtpgConfig};
use fbist_bench::build_circuit;
use fbist_fault::FaultList;
use fbist_genbench::profile;

fn bench_analyze(c: &mut Criterion) {
    let mut group = c.benchmark_group("analyze");
    group.sample_size(10);

    for name in ["mid256", "big3500"] {
        let p = profile(name).expect("paper-scale mimic");
        let netlist = build_circuit(&p, 1);
        let faults = FaultList::collapsed(&netlist);

        // The check pass must be clean on generator output and the
        // pre-pass must prove something, or the timings measure a no-op.
        let report = analyze(&netlist);
        assert!(
            !report.has_findings(),
            "{name}: generator output not check-clean:\n{}",
            report.render_text()
        );
        let proven = untestable_faults(&netlist, &faults).expect("validated netlist");
        assert!(
            proven.iter().any(|&m| m),
            "{name}: pre-pass proves no fault untestable — timing a no-op"
        );

        group.bench_with_input(BenchmarkId::new("check", name), &name, |b, _| {
            b.iter(|| analyze(&netlist))
        });
        group.bench_with_input(BenchmarkId::new("prepass", name), &name, |b, _| {
            b.iter(|| untestable_faults(&netlist, &faults))
        });
    }

    // ATPG wall clock, knob off vs on, on the profile whose aborted
    // faults the pre-pass exists for.
    let p = profile("big3500").expect("paper-scale mimic");
    let netlist = build_circuit(&p, 1);
    let atpg = Atpg::new(&netlist).expect("combinational mimic");
    let faults = FaultList::collapsed(&netlist);
    let run = |static_prepass: bool| {
        atpg.run(
            &faults,
            &AtpgConfig {
                static_prepass,
                ..AtpgConfig::default()
            },
        )
    };
    let off = run(false);
    let on = run(true);
    assert_eq!(
        off.detected, on.detected,
        "pre-pass changed the detected-fault set"
    );
    assert_eq!(off.patterns, on.patterns, "pre-pass changed the test set");
    assert!(
        !off.aborted.is_empty(),
        "big3500 no longer aborts faults — move the Phase-2 assertion to a \
         profile that does"
    );
    // Phase-2 targets = faults surviving Phase 0 (static pruning) and
    // Phase 1 (random detection). Pruned faults are never randomly
    // detected, so any pruning strictly shrinks the PODEM workload.
    let pruned = untestable_faults(&netlist, &faults)
        .expect("validated netlist")
        .iter()
        .filter(|&&m| m)
        .count();
    let phase2_off = off.total_faults - off.random_detected;
    let phase2_on = on.total_faults - pruned - on.random_detected;
    assert!(
        pruned > 0 && phase2_on < phase2_off,
        "pre-pass must strictly reduce Phase-2 targets ({phase2_off} -> {phase2_on})"
    );

    for (label, static_prepass) in [("full", false), ("prepass", true)] {
        group.bench_with_input(
            BenchmarkId::new("atpg_wall", label),
            &static_prepass,
            |b, &static_prepass| b.iter(|| run(static_prepass)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_analyze);
criterion_main!(benches);
