//! Cost and payoff of static learning against the ATPG wall clock.
//!
//! The learned-implication database ([`LearnedImplications`]) is built
//! once per netlist and then consulted for free — by the Phase-0
//! untestability pre-pass and by every PODEM search. This bench times the
//! build on the `big3500` mimic (`learn/big3500`) next to the
//! deterministic ATPG run with the PR-8 pre-pass only
//! (`atpg_wall/prepass`) and with learning on top (`atpg_wall/learning`).
//! CI's push-gated `learning-bench` job bounds the database build at
//! ≤5 % of the pre-pass-only ATPG wall clock from `BENCH_results.json`;
//! in practice learning *pays for itself outright* — the learning run's
//! total wall clock (database build included) is below the pre-pass-only
//! baseline, because every learned-pruned fault and every
//! learning-seeded search skips PODEM backtracking that dominates the
//! budget-limited aborts.
//!
//! Before timing, the bench asserts the semantic contract pinned for
//! every profile by `tests/analyze_equivalence.rs`, at full `big3500`
//! scale:
//!
//! * the learned pre-pass proves a strict superset of the plain
//!   pre-pass's untestable faults;
//! * with learning on, strictly fewer faults are aborted and strictly
//!   more are proven untestable than the PR-8 pre-pass baseline;
//! * fault coverage never drops (it in fact *rises*: searches seeded
//!   with learned implications find tests for faults the unseeded
//!   search aborted, and every such fault is a genuine detection).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fbist_analyze::{untestable_faults, untestable_faults_with, LearnedImplications};
use fbist_atpg::{Atpg, AtpgConfig};
use fbist_bench::build_circuit;
use fbist_fault::FaultList;
use fbist_genbench::profile;

fn bench_learning(c: &mut Criterion) {
    let mut group = c.benchmark_group("learning");
    group.sample_size(10);

    let p = profile("big3500").expect("paper-scale mimic");
    let netlist = build_circuit(&p, 1);
    let faults = FaultList::collapsed(&netlist);

    // The database must prove strictly more than the plain pre-pass, or
    // the timings measure learning that learned nothing.
    let db = LearnedImplications::learn(&netlist).expect("combinational mimic");
    let plain = untestable_faults(&netlist, &faults).expect("validated netlist");
    let learned = untestable_faults_with(&netlist, &faults, Some(&db)).expect("validated netlist");
    for (i, (&p, &l)) in plain.iter().zip(&learned).enumerate() {
        assert!(
            !p || l,
            "fault {i}: proven by the plain pass, lost with learning"
        );
    }
    let plain_count = plain.iter().filter(|&&m| m).count();
    let learned_count = learned.iter().filter(|&&m| m).count();
    assert!(
        learned_count > plain_count,
        "learning proves nothing beyond the plain pre-pass \
         ({plain_count} -> {learned_count}) — timing a no-op"
    );

    // ATPG payoff contract: strictly fewer aborts, strictly more proofs,
    // coverage no worse than the pre-pass-only baseline.
    let atpg = Atpg::new(&netlist).expect("combinational mimic");
    let run = |static_learning: bool| {
        atpg.run(
            &faults,
            &AtpgConfig {
                static_prepass: true,
                static_learning,
                ..AtpgConfig::default()
            },
        )
    };
    let prepass = run(false);
    let learning = run(true);
    assert!(
        !prepass.aborted.is_empty(),
        "big3500 no longer aborts faults — move the payoff assertions to a \
         profile that does"
    );
    assert!(
        learning.aborted.len() < prepass.aborted.len(),
        "learning must strictly reduce aborted faults ({} -> {})",
        prepass.aborted.len(),
        learning.aborted.len()
    );
    assert!(
        learning.untestable.len() > prepass.untestable.len(),
        "learning must strictly grow the proven-untestable set ({} -> {})",
        prepass.untestable.len(),
        learning.untestable.len()
    );
    assert!(
        learning.coverage() >= prepass.coverage(),
        "learning dropped fault coverage ({:.4} -> {:.4})",
        prepass.coverage(),
        learning.coverage()
    );

    group.bench_with_input(BenchmarkId::new("learn", "big3500"), &(), |b, ()| {
        b.iter(|| LearnedImplications::learn(&netlist))
    });
    for (label, static_learning) in [("prepass", false), ("learning", true)] {
        group.bench_with_input(
            BenchmarkId::new("atpg_wall", label),
            &static_learning,
            |b, &static_learning| b.iter(|| run(static_learning)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_learning);
criterion_main!(benches);
