//! Per-row vs. cross-row-batched Detection-Matrix construction.
//!
//! Measures `InitialReseedingBuilder::matrix_for` under both engines at
//! `jobs = 1` (so the ratio is pure lane-filling, not parallelism) on a
//! mid-size and a c7552-scale circuit, across the τ regimes that matter:
//! `τ = 3` (per-row blocks 94 % empty — the batched engine's best case),
//! `τ = 31` (the default; 50 % empty) and `τ = 63` (rows fill whole
//! blocks exactly — batching can win nothing, and must not lose). The two
//! engines are bit-identical by construction (asserted below before
//! timing), so every ratio is pure speedup.
//!
//! CI consumes the merged `BENCH_results.json` entries and fails if the
//! batched engine is ever slower than per-row at τ ≤ 31.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fbist_bench::build_circuit;
use fbist_genbench::profile;
use reseed_core::{FlowConfig, InitialReseedingBuilder, MatrixBuild, SimdWidth, TpgKind};

fn bench_matrix_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("matrix_build");
    group.sample_size(10);
    for name in ["mid256", "big3500"] {
        let p = profile(name).expect("profile registered");
        let netlist = build_circuit(&p, 1);
        let cfg = FlowConfig::new(TpgKind::Adder);
        let builder = InitialReseedingBuilder::new(&netlist).expect("combinational circuit");
        let base = builder.build(&cfg);
        let tpg = cfg.tpg.build(netlist.inputs().len());

        for tau in [3usize, 31, 63] {
            let run = |engine: MatrixBuild| {
                builder.matrix_for(
                    tpg.as_ref(),
                    &base.atpg.patterns,
                    &base.target_faults,
                    tau,
                    cfg.seed,
                    1,
                    engine,
                    SimdWidth::W1,
                )
            };
            assert_eq!(
                run(MatrixBuild::PerRow).1.row_major(),
                run(MatrixBuild::Batched).1.row_major(),
                "batched matrix must be bit-identical to per-row ({name}, τ={tau})"
            );
            for (label, engine) in [
                ("per_row", MatrixBuild::PerRow),
                ("batched", MatrixBuild::Batched),
            ] {
                group.bench_with_input(
                    BenchmarkId::new(label, format!("{name}_tau{tau}")),
                    &engine,
                    |b, &engine| b.iter(|| run(engine)),
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_matrix_build);
criterion_main!(benches);
