//! Per-τ vs. first-detection τ-sweep evaluation.
//!
//! Two views of the same contract, both at `jobs = 1` (so every ratio is
//! pure simulation sharing, not parallelism) on a mid-size and a
//! c7552-scale circuit, over the default `fbist sweep` τ list
//! `[0, 3, 7, 15, 31, 63, 127, 255]`:
//!
//! * `sweep_curve/…` — the user-facing `tradeoff_sweep_with` end to end,
//!   including the shared, τ-independent ATPG run both engines pay
//!   identically (on `big3500` that fixed cost is ~27 s and caps the
//!   end-to-end ratio);
//! * `sweep_matrix/…` — `tradeoff_sweep_from_base` on a precomputed
//!   [`AtpgBase`]: the τ-sweep machinery itself, which is what this
//!   engine rewrites. Per-τ pays one Detection-Matrix fault simulation
//!   per point; first-detection pays exactly one pass at `max(taus)` and
//!   derives every point by thresholding.
//!
//! Both engines are bit-identical by construction (asserted below before
//! timing a single iteration), so every ratio is pure speedup. CI
//! consumes the merged `BENCH_results.json` entries and fails if
//! first-detection is ever slower than per-τ in either view, or the
//! `sweep_matrix` amortisation drops under its per-circuit floor
//! (3.0× on `big3500`, 2.5× on `mid256` — locally 3.58× and 3.05×; the
//! mid256 floor leaves noise margin below the measured 3× because the
//! per-point solve/trim work both engines share dilutes the small
//! circuit's ratio; see `.github/workflows/ci.yml`).
//!
//! [`AtpgBase`]: reseed_core::AtpgBase

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fbist_bench::build_circuit;
use fbist_genbench::profile;
use reseed_core::{
    tradeoff_sweep_from_base, tradeoff_sweep_with, FlowConfig, ReseedingFlow, SweepEngine, TpgKind,
};

/// The `fbist sweep` default τ list.
const TAUS: [usize; 8] = [0, 3, 7, 15, 31, 63, 127, 255];

fn bench_sweep_curve(c: &mut Criterion) {
    let engines = [
        ("per_tau", SweepEngine::PerTau),
        ("first_detection", SweepEngine::FirstDetection),
    ];
    for name in ["mid256", "big3500"] {
        let p = profile(name).expect("profile registered");
        let netlist = build_circuit(&p, 1);
        let flow = ReseedingFlow::new(&netlist).expect("combinational circuit");
        let cfg = |engine: SweepEngine| {
            FlowConfig::new(TpgKind::Adder)
                .with_jobs(1)
                .with_sweep_engine(engine)
        };
        let base = flow.builder().atpg_base(&cfg(SweepEngine::Auto));
        assert_eq!(
            tradeoff_sweep_with(&flow, &cfg(SweepEngine::PerTau), &TAUS),
            tradeoff_sweep_from_base(&flow, &base, &cfg(SweepEngine::FirstDetection), &TAUS),
            "first-detection sweep must be bit-identical to per-τ ({name})"
        );

        // end to end, ATPG included (the `fbist sweep` experience)
        let mut group = c.benchmark_group("sweep_curve");
        group.sample_size(10);
        for (label, engine) in engines {
            group.bench_with_input(BenchmarkId::new(label, name), &engine, |b, &engine| {
                b.iter(|| tradeoff_sweep_with(&flow, &cfg(engine), &TAUS))
            });
        }
        group.finish();

        // the sweep machinery alone, on the shared ATPG base
        let mut group = c.benchmark_group("sweep_matrix");
        group.sample_size(10);
        for (label, engine) in engines {
            group.bench_with_input(BenchmarkId::new(label, name), &engine, |b, &engine| {
                b.iter(|| tradeoff_sweep_from_base(&flow, &base, &cfg(engine), &TAUS))
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_sweep_curve);
criterion_main!(benches);
