//! Ablation A: how much the essentiality/dominance reduction buys.
//!
//! The paper's §4 claim: "the reduction process is highly effective … the
//! size of the reduced matrix allows dealing with it with an exact
//! algorithm". Compared here: solve time with reductions off / paper
//! (essential + row dominance) / all (incl. column dominance).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fbist_setcover::generate::detection_shaped;
use fbist_setcover::{solve, Engine, ExactConfig, ReducerConfig, SolveConfig};

fn configs() -> Vec<(&'static str, SolveConfig)> {
    let exact = ExactConfig {
        node_limit: 2_000_000,
    };
    vec![
        (
            "no_reduction",
            SolveConfig {
                reducer: ReducerConfig::none(),
                engine: Engine::Exact,
                exact,
                ..SolveConfig::default()
            },
        ),
        (
            "paper_reduction",
            SolveConfig {
                reducer: ReducerConfig::default(),
                engine: Engine::Exact,
                exact,
                ..SolveConfig::default()
            },
        ),
        (
            "all_reductions",
            SolveConfig {
                reducer: ReducerConfig::all(),
                engine: Engine::Exact,
                exact,
                ..SolveConfig::default()
            },
        ),
    ]
}

fn bench_reduction_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("reduction_ablation");
    group.sample_size(10);
    for &(rows, cols) in &[(40usize, 120usize), (80, 240)] {
        let m = detection_shaped(rows, cols, 17);
        for (name, cfg) in configs() {
            group.bench_with_input(
                BenchmarkId::new(name, format!("{rows}x{cols}")),
                &m,
                |b, m| b.iter(|| solve(m, &cfg)),
            );
        }
        // sanity: all three agree on the optimum
        let ks: Vec<usize> = configs()
            .iter()
            .map(|(_, cfg)| solve(&m, cfg).cardinality())
            .collect();
        assert!(
            ks.windows(2).all(|w| w[0] == w[1]),
            "reduction changed the optimum: {ks:?}"
        );
    }
    group.finish();
}

criterion_group!(benches, bench_reduction_ablation);
criterion_main!(benches);
