//! Parallel vs. sequential Detection-Matrix construction.
//!
//! Measures `InitialReseedingBuilder::matrix_for` — the dominant cost of
//! `table1`/`table2`/`figure2` and of every `ReseedingFlow::run` — at
//! `jobs = 1` against `jobs =` all available cores. The two variants are
//! bit-identical by construction (asserted below before timing), so the
//! ratio is pure speedup.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fbist_bench::build_circuit;
use fbist_genbench::profile;
use reseed_core::{FlowConfig, InitialReseedingBuilder, MatrixBuild, SimdWidth, TpgKind};

fn bench_par_matrix(c: &mut Criterion) {
    let p = profile("s1238").expect("paper circuit").scaled(0.3);
    let netlist = build_circuit(&p, 1);
    let cfg = FlowConfig::new(TpgKind::Adder).with_tau(31);
    let builder = InitialReseedingBuilder::new(&netlist).expect("combinational mimic");
    let base = builder.build(&cfg);
    let tpg = cfg.tpg.build(netlist.inputs().len());

    let run = |jobs: usize| {
        builder.matrix_for(
            &tpg,
            &base.atpg.patterns,
            &base.target_faults,
            cfg.tau,
            cfg.seed,
            jobs,
            MatrixBuild::Auto,
            SimdWidth::Auto,
        )
    };
    let hw = mini_rayon::jobs().max(2);
    assert_eq!(
        run(1).1.row_major(),
        run(hw).1.row_major(),
        "parallel matrix must be bit-identical to sequential"
    );

    // fixed IDs ("1" and "all") so BENCH_results.json keys stay
    // comparable across machines with different core counts
    let mut group = c.benchmark_group("par_matrix");
    group.sample_size(10);
    for (label, jobs) in [("1", 1), ("all", hw)] {
        group.bench_with_input(BenchmarkId::new("jobs", label), &jobs, |b, &jobs| {
            b.iter(|| run(jobs));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_par_matrix);
criterion_main!(benches);
