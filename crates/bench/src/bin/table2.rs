//! Regenerates **Table 2** of the paper: the anatomy of the set-covering
//! computation — initial Detection-Matrix size, the effect of the
//! essentiality/dominance reduction, and how many triplets come from
//! necessity vs. from the exact solver (the paper's "LINGO" column).
//!
//! ```text
//! cargo run -p fbist-bench --release --bin table2 [-- --scale 0.15 \
//!     --circuits c499,s1238 --tau 31 --greedy --jobs 0]
//! ```
//!
//! Shapes to check against the paper:
//! * the reduction shrinks the matrix massively (often to empty — the
//!   paper's c499, c880, c1355, c1908, s820, s838, s953, s1423, s15850
//!   solve by necessary triplets alone);
//! * other circuits split between solver-only and mixed solutions.

use fbist_bench::{build_circuit, display_name, install_jobs, num, suite_from_args};
use fbist_setcover::{Engine, SolveConfig};
use reseed_core::{FlowConfig, ReseedingFlow, TpgKind};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let suite = suite_from_args(&args);
    let jobs = install_jobs(&args);
    let tau: usize = num(&args, "--tau", 31);
    let greedy = args.iter().any(|a| a == "--greedy");

    println!(
        "# Table 2 — set-covering algorithm anatomy (scale {}, τ = {tau}, seed {}, engine {}, jobs {jobs})",
        suite.scale,
        suite.seed,
        if greedy { "greedy" } else { "exact" }
    );
    println!(
        "{:<10} {:>14} | {:>4} {:>11} {:>5} {:>6} {:>6} {:>6} {:>9}",
        "circuit", "initial MxF", "tpg", "residual", "iter", "domin", "necess", "solver", "total"
    );

    for p in &suite.profiles {
        let netlist = build_circuit(p, suite.seed);
        let flow = match ReseedingFlow::new(&netlist) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("{}: {e}", p.name);
                continue;
            }
        };
        let mut first = true;
        for tpg in TpgKind::PAPER {
            let mut cfg = FlowConfig::new(tpg).with_tau(tau).with_seed(suite.seed);
            if greedy {
                cfg = cfg.with_solve(SolveConfig {
                    engine: Engine::Greedy,
                    ..SolveConfig::default()
                });
            }
            let report = flow.run(&cfg);
            let initial = if first {
                format!("{}x{}", report.initial_triplets, report.target_faults)
            } else {
                String::new()
            };
            println!(
                "{:<10} {:>14} | {:>4} {:>11} {:>5} {:>6} {:>6} {:>6} {:>9}",
                if first { display_name(p) } else { "" },
                initial,
                tpg.name(),
                format!("{}x{}", report.residual.0, report.residual.1),
                report.reduction_iterations,
                report.dominated_rows,
                report.necessary_count(),
                report.solver_count(),
                format!(
                    "{}{}",
                    report.triplet_count(),
                    if report.solution_optimal { "" } else { "~" }
                ),
            );
            first = false;
            assert!(report.covers_all_target_faults());
        }
    }
    println!("# '~' marks non-proven-optimal totals (greedy engine or node budget)");
}
