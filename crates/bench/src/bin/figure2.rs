//! Regenerates **Figure 2** of the paper: the trade-off between the number
//! of reseedings and the global test length, on s1238 with the adder-based
//! accumulator.
//!
//! In the paper, growing the test length from 5 427 to 15 551 drives the
//! triplet count down 11 → 7 → 5 → 4 → … → 2. The shape to check is the
//! monotone staircase: larger τ ⇒ longer (untrimmed) sequences ⇒ denser
//! detection-matrix rows ⇒ fewer triplets, with diminishing returns.
//!
//! ```text
//! cargo run -p fbist-bench --release --bin figure2 [-- --scale 0.35 \
//!     --circuit s1238 --tpg add --taus 0,3,7,15,31,63,127,255,511 \
//!     --sweep-engine auto --jobs 0]
//! ```

use fbist_bench::{build_circuit, flag, install_jobs, num};
use fbist_genbench::profile;
use reseed_core::{tradeoff_sweep, FlowConfig, SweepEngine, TpgKind};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let jobs = install_jobs(&args);
    let circuit = flag(&args, "--circuit").unwrap_or_else(|| "s1238".to_owned());
    let scale: f64 = num(&args, "--scale", 0.35);
    let seed: u64 = num(&args, "--seed", 1);
    let tpg = match flag(&args, "--tpg").as_deref() {
        Some("sub") => TpgKind::Subtracter,
        Some("mul") => TpgKind::Multiplier,
        Some("lfsr") => TpgKind::Lfsr,
        _ => TpgKind::Adder,
    };
    let taus: Vec<usize> = match flag(&args, "--taus") {
        Some(list) => reseed_core::parse_tau_list(&list).unwrap_or_else(|e| panic!("{e}")),
        None => vec![0, 3, 7, 15, 31, 63, 127, 255, 511],
    };
    let engine = match flag(&args, "--sweep-engine") {
        Some(v) => SweepEngine::parse(&v).unwrap_or_else(|e| panic!("{e}")),
        None => SweepEngine::Auto,
    };

    let p = profile(&circuit)
        .unwrap_or_else(|| panic!("unknown profile {circuit:?}"))
        .scaled(scale);
    let netlist = build_circuit(&p, seed);
    let cfg = FlowConfig::new(tpg)
        .with_seed(seed)
        .with_sweep_engine(engine);
    let curve = tradeoff_sweep(&netlist, &cfg, &taus).expect("combinational mimic");

    println!(
        "# Figure 2 — trade-off reseedings vs. test length ({circuit} @ scale {scale}, TPG {tpg}, seed {seed}, jobs {jobs}, sweep engine {engine})"
    );
    println!(
        "{:>6} {:>10} {:>12} {:>10}",
        "tau", "#triplets", "test_length", "rom_bits"
    );
    for pt in &curve {
        println!(
            "{:>6} {:>10} {:>12} {:>10}",
            pt.tau, pt.triplets, pt.test_length, pt.rom_bits
        );
    }
    // ASCII rendition of the staircase
    let kmax = curve.iter().map(|p| p.triplets).max().unwrap_or(1);
    println!("\n# triplets vs test length (each ▇ column ∝ #triplets)");
    for pt in &curve {
        let bar = "▇".repeat(pt.triplets * 40 / kmax.max(1));
        println!("len {:>7} | {bar} {}", pt.test_length, pt.triplets);
    }
    // the paper's Figure-2 shape. This is an empirical property of the
    // instance, not a guarantee: the greedy/local-search solver can
    // return a (still fully covering) larger cover at a larger τ.
    let monotone = curve.windows(2).all(|w| w[1].triplets <= w[0].triplets);
    println!(
        "\n# monotone non-increasing triplet count: {}",
        if monotone {
            "yes (matches Figure 2)"
        } else {
            "no (legal — the solver does not guarantee monotonicity)"
        }
    );
}
