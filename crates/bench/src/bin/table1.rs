//! Regenerates **Table 1** of the paper: the reseeding solution
//! (`#Triplets`, `Test Length`) per circuit and per accumulator TPG,
//! compared against the GATSBY genetic-algorithm baseline.
//!
//! ```text
//! cargo run -p fbist-bench --release --bin table1 [-- --scale 0.15 \
//!     --circuits c499,s1238 --tau 31 --skip-gatsby --tpg all --jobs 0]
//! ```
//!
//! The paper's headline: the set-covering approach needs 2–25 fewer
//! triplets than GATSBY on every circuit except s838. The shape to check
//! here is *set covering ≤ GATSBY everywhere, often strictly better*.

use fbist_bench::{build_circuit, display_name, flag, install_jobs, num, suite_from_args};
use reseed_core::{FlowConfig, Gatsby, GatsbyConfig, ReseedingFlow, TpgKind};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let suite = suite_from_args(&args);
    let jobs = install_jobs(&args);
    let tau: usize = num(&args, "--tau", 31);
    let skip_gatsby = args.iter().any(|a| a == "--skip-gatsby");
    let tpgs: Vec<TpgKind> = match flag(&args, "--tpg").as_deref() {
        Some("all") => vec![
            TpgKind::Adder,
            TpgKind::Subtracter,
            TpgKind::Multiplier,
            TpgKind::Lfsr,
            TpgKind::MultiPolyLfsr,
            TpgKind::Weighted,
        ],
        Some("add") => vec![TpgKind::Adder],
        Some("sub") => vec![TpgKind::Subtracter],
        Some("mul") => vec![TpgKind::Multiplier],
        Some("lfsr") => vec![TpgKind::Lfsr],
        _ => TpgKind::PAPER.to_vec(),
    };

    println!(
        "# Table 1 — reseeding solutions (scale {}, τ = {tau}, seed {}, jobs {jobs})",
        suite.scale, suite.seed
    );
    println!("# set covering (SC) vs GATSBY-GA (GA); ΔK = GA triplets − SC triplets");
    print!("{:<10} {:>7}", "circuit", "|F|");
    for t in &tpgs {
        print!(
            " | {t:>4}: {:>5} {:>8} {:>5} {:>8} {:>4}",
            "SC.K", "SC.len", "GA.K", "GA.len", "ΔK"
        );
    }
    println!();

    let mut sc_wins = 0usize;
    let mut ties = 0usize;
    let mut ga_wins = 0usize;
    let mut ga_incomplete = 0usize;
    for p in &suite.profiles {
        let netlist = build_circuit(p, suite.seed);
        let flow = match ReseedingFlow::new(&netlist) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("{}: {e}", p.name);
                continue;
            }
        };
        print!("{:<10}", display_name(p));
        let mut first = true;
        for &tpg in &tpgs {
            let cfg = FlowConfig::new(tpg).with_tau(tau).with_seed(suite.seed);
            let report = flow.run(&cfg);
            if first {
                print!(" {:>7}", report.target_faults);
                first = false;
            }
            let (ga_k, ga_len, delta) = if skip_gatsby {
                (String::from("-"), String::from("-"), String::from("-"))
            } else {
                let init = flow.builder().build(&cfg);
                let gatsby = Gatsby::new(&netlist).expect("flow built");
                let g = gatsby.run(
                    &init.target_faults,
                    &GatsbyConfig {
                        tpg,
                        tau,
                        seed: suite.seed ^ 0x6A,
                        ..GatsbyConfig::default()
                    },
                );
                let delta = g.triplet_count() as i64 - report.triplet_count() as i64;
                if g.complete() {
                    match delta.cmp(&0) {
                        std::cmp::Ordering::Greater => sc_wins += 1,
                        std::cmp::Ordering::Equal => ties += 1,
                        std::cmp::Ordering::Less => ga_wins += 1,
                    }
                } else {
                    // an incomplete GA run needed *more* than GA.K triplets
                    // to match SC's (always complete) coverage
                    ga_incomplete += 1;
                }
                let complete = if g.complete() { "" } else { "*" };
                (
                    format!("{}{complete}", g.triplet_count()),
                    g.test_length.to_string(),
                    if g.complete() {
                        format!("{delta:+}")
                    } else {
                        "n/a".to_owned()
                    },
                )
            };
            print!(
                " | {:>10} {:>8} {:>5} {:>8} {:>4}",
                report.triplet_count(),
                report.test_length(),
                ga_k,
                ga_len,
                delta
            );
            assert!(
                report.covers_all_target_faults(),
                "{}: solution must cover F",
                p.name
            );
        }
        println!();
    }
    if !skip_gatsby {
        println!(
            "# summary over complete GA runs: set covering better on {sc_wins}, tied on {ties}, \
             worse on {ga_wins}; GA failed full coverage on {ga_incomplete} runs \
             (set covering is complete by construction)."
        );
        println!(
            "# paper shape: set covering ≤ GATSBY on every circuit except s838; \
             '*' / n/a = GA gave up before full coverage."
        );
    }
}
