//! Shared harness for the table/figure binaries and Criterion benches.
//!
//! The binaries in `src/bin/` regenerate the paper's evaluation artefacts:
//!
//! | Binary    | Artefact | Content |
//! |-----------|----------|---------|
//! | `table1`  | Table 1  | per circuit × TPG: `#Triplets` and `Test Length`, set covering vs. GATSBY-GA |
//! | `table2`  | Table 2  | per circuit: initial matrix size; per TPG: residual size, #necessary, #solver triplets |
//! | `figure2` | Figure 2 | τ sweep on s1238/adder: triplets vs. test length |
//!
//! All binaries accept `--scale F` (default 0.15) to size the synthetic
//! mimics, `--seed N`, and `--circuits a,b,c` to restrict the suite; see
//! `EXPERIMENTS.md` for the recorded runs.

#![forbid(unsafe_code)]

use fbist_genbench::{generate, paper_suite, profile, CircuitProfile};
use fbist_netlist::Netlist;

/// Default scale factor for the synthetic mimics used by the committed
/// experiment tables (kept modest so the whole suite runs in minutes).
pub const DEFAULT_SCALE: f64 = 0.15;

/// Simple `--flag value` extraction from a raw argument list.
pub fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Parses a numeric flag with a default.
pub fn num<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    flag(args, name)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Parses `--jobs` (0 = auto), installs it process-wide, and returns the
/// resolved worker count for display. All table/figure binaries accept it;
/// job counts change wall-clock time only, never results. Exits with
/// status 1 on a non-numeric value — same contract as the `fbist` CLI —
/// so a typo can never silently benchmark the wrong configuration.
pub fn install_jobs(args: &[String]) -> usize {
    if let Some(v) = flag(args, "--jobs") {
        match mini_rayon::parse_jobs(&v) {
            Ok(n) => mini_rayon::set_jobs(n),
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(1);
            }
        }
    }
    mini_rayon::jobs()
}

/// The circuit selection for a harness run.
pub struct Suite {
    /// Profiles to run, already scaled.
    pub profiles: Vec<CircuitProfile>,
    /// Scale factor applied.
    pub scale: f64,
    /// Generation seed.
    pub seed: u64,
}

/// Builds the circuit suite from CLI args: `--scale`, `--seed`,
/// `--circuits c499,s1238,…` (default: the full 16-circuit paper suite).
pub fn suite_from_args(args: &[String]) -> Suite {
    let scale: f64 = num(args, "--scale", DEFAULT_SCALE);
    let seed: u64 = num(args, "--seed", 1);
    let names: Vec<String> = match flag(args, "--circuits") {
        Some(list) => list.split(',').map(|s| s.trim().to_owned()).collect(),
        None => paper_suite().iter().map(|p| p.name.clone()).collect(),
    };
    let profiles = names
        .iter()
        .filter_map(|n| profile(n))
        .map(|p| p.scaled(scale))
        .collect();
    Suite {
        profiles,
        scale,
        seed,
    }
}

/// Generates the (full-scan combinational) netlist for a scaled profile.
pub fn build_circuit(p: &CircuitProfile, seed: u64) -> Netlist {
    generate(p, seed)
}

/// Strips a `@scale` suffix for display.
pub fn display_name(p: &CircuitProfile) -> &str {
    p.name.split('@').next().unwrap_or(&p.name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_suite_is_paper_suite() {
        let s = suite_from_args(&[]);
        assert_eq!(s.profiles.len(), 16);
        assert!(s.profiles[0].name.starts_with("c499"));
    }

    #[test]
    fn circuit_restriction() {
        let args = vec!["--circuits".to_owned(), "c499,s1238".to_owned()];
        let s = suite_from_args(&args);
        assert_eq!(s.profiles.len(), 2);
    }

    #[test]
    fn flags_parse() {
        let args = vec!["--scale".to_owned(), "0.5".to_owned()];
        assert_eq!(num(&args, "--scale", 1.0), 0.5);
        assert_eq!(num(&args, "--seed", 7u64), 7);
    }

    #[test]
    fn display_strips_scale() {
        let p = profile("c499").unwrap().scaled(0.5);
        assert_eq!(display_name(&p), "c499");
    }
}
