//! Differential suite pinning the sparse covering engine to the dense one.
//!
//! For **every** genbench profile (scaled to a small, fast gate budget —
//! the covering machinery is identical at every size) and for a TPG from
//! each family (accumulator-based `add`, LFSR-based `lfsr`), the sparse
//! backend must produce
//!
//! 1. an identical greedy cover (same rows in the same order),
//! 2. an identical reduction anatomy (essential rows, active sets, and the
//!    event log entry for entry),
//! 3. an identical exact search (best cover, node count, optimality flag),
//!    and
//! 4. an identical end-to-end [`ReseedingReport`]
//!
//! compared to the dense backend on the same Detection Matrix. This is the
//! workspace's backend contract, the exact analogue of the `--jobs`
//! determinism contract next door in `parallel_equivalence.rs`: a backend
//! may only change wall-clock time, never a single bit of any artefact.

use fbist_genbench::{all_profiles, generate, CircuitProfile};
use fbist_netlist::Netlist;
use fbist_setcover::{greedy_cover_with, reduce_with, ExactSolver, ReducerConfig};
use set_covering_reseeding::prelude::*;

/// Gate budget the profiles are scaled down to — includes the new
/// `big3500`/`xl7000` stress profiles, whose wide interfaces survive
/// scaling and exercise the widest TPG registers in the suite.
const GATE_BUDGET: f64 = 70.0;

const TAU: usize = 7;

fn small(p: &CircuitProfile) -> CircuitProfile {
    let factor = (GATE_BUDGET / p.gates as f64).min(1.0);
    p.scaled(factor)
}

fn circuit(p: &CircuitProfile) -> Netlist {
    let n = generate(&small(p), 1);
    if n.is_combinational() {
        n
    } else {
        full_scan(&n).into_combinational()
    }
}

fn assert_equivalent(netlist: &Netlist, tpg: TpgKind, label: &str) {
    let base = FlowConfig::new(tpg).with_tau(TAU);
    let flow = ReseedingFlow::new(netlist).expect("combinational circuit");
    let init = flow.builder().build(&base);

    // 1. identical greedy cover on the raw Detection Matrix
    assert_eq!(
        greedy_cover_with(&init.matrix, Backend::Dense),
        greedy_cover_with(&init.matrix, Backend::Sparse),
        "{label}: greedy covers differ between backends"
    );

    // 2. identical reduction anatomy (incl. the full event log)
    for cfg in [ReducerConfig::default(), ReducerConfig::all()] {
        assert_eq!(
            reduce_with(&init.matrix, &cfg, Backend::Dense),
            reduce_with(&init.matrix, &cfg, Backend::Sparse),
            "{label}: reduction anatomy differs between backends ({cfg:?})"
        );
    }

    // 3. identical exact search on the residual matrix, node for node
    let red = reduce_with(&init.matrix, &ReducerConfig::default(), Backend::Dense);
    if !red.active_cols.is_empty() {
        let (sub, _) = init.matrix.submatrix(&red.active_rows, &red.active_cols);
        assert_eq!(
            ExactSolver::new().with_backend(Backend::Dense).solve(&sub),
            ExactSolver::new().with_backend(Backend::Sparse).solve(&sub),
            "{label}: exact searches differ between backends"
        );
    }

    // 4. identical final report, end to end
    let dense = flow.run(&base.clone().with_backend(Backend::Dense));
    let sparse = flow.run(&base.clone().with_backend(Backend::Sparse));
    assert_eq!(dense, sparse, "{label}: final report differs");
    assert!(dense.covers_all_target_faults(), "{label}: must cover F");
}

#[test]
fn every_profile_is_backend_invariant_with_accumulator_tpg() {
    for p in all_profiles() {
        let n = circuit(&p);
        assert_equivalent(&n, TpgKind::Adder, &p.name);
    }
}

#[test]
fn every_profile_is_backend_invariant_with_lfsr_tpg() {
    for p in all_profiles() {
        let n = circuit(&p);
        assert_equivalent(&n, TpgKind::Lfsr, &p.name);
    }
}

#[test]
fn auto_backend_matches_forced_backends_end_to_end() {
    // Auto may pick either implementation per matrix; the report must be
    // the one both implementations agree on.
    let p = genbench_profile("mid256").unwrap();
    let n = circuit(&p);
    let flow = ReseedingFlow::new(&n).unwrap();
    let base = FlowConfig::new(TpgKind::Adder).with_tau(TAU);
    let auto = flow.run(&base.clone().with_backend(Backend::Auto));
    let dense = flow.run(&base.clone().with_backend(Backend::Dense));
    assert_eq!(auto, dense, "auto must agree with the forced backends");
}
