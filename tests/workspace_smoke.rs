//! Workspace smoke test: the Figure-1 flow end-to-end on the `tiny64`
//! genbench profile, pinning the exact cover so any regression anywhere in
//! the pipeline (generation, ATPG, matrix build, reduction, solving,
//! trimming) shows up as a cardinality change here.

use set_covering_reseeding::prelude::*;

fn tiny64_report(seed: u64) -> ReseedingReport {
    let netlist = genbench_generate(&genbench_profile("tiny64").unwrap(), seed);
    let flow = ReseedingFlow::new(&netlist).unwrap();
    flow.run(&FlowConfig::new(TpgKind::Adder).with_tau(31))
}

#[test]
fn tiny64_flow_covers_all_target_faults() {
    let report = tiny64_report(1);
    assert!(report.covers_all_target_faults());
    assert!(report.target_faults > 0, "ATPG must find detectable faults");
    assert!(report.triplet_count() > 0);
    assert!(
        report.necessary_count() <= report.triplet_count(),
        "necessary triplets are a subset of the solution"
    );
}

#[test]
fn tiny64_flow_cover_cardinality_is_pinned() {
    // The whole pipeline is deterministic in (profile, seed, config), so
    // the solved cover is reproducible bit-for-bit. If an intentional
    // change to any stage moves this number, re-pin it consciously —
    // don't widen the assertion.
    let report = tiny64_report(1);
    assert_eq!(
        report.triplet_count(),
        PINNED_TINY64_COVER,
        "tiny64/adder/τ=31 cover cardinality drifted (test length {})",
        report.test_length()
    );
    assert!(
        report.solution_optimal,
        "exact solver must prove optimality"
    );
}

/// Pinned cover cardinality for `tiny64` seed 1, adder TPG, τ = 31.
const PINNED_TINY64_COVER: usize = 13;
