//! Cross-crate property-based tests.

use proptest::prelude::*;
use set_covering_reseeding::prelude::*;
use set_covering_reseeding::setcover::{greedy_cover, reduce, ExactSolver, ReducerConfig};

/// Strategy: a random small netlist built through the public builder API.
fn arb_netlist() -> impl Strategy<Value = Netlist> {
    (2usize..6, 5usize..40, any::<u64>()).prop_map(|(inputs, gates, seed)| {
        // deterministic mini-generator (independent of fbist-genbench)
        let mut n = Netlist::new("prop");
        let mut nets = Vec::new();
        for i in 0..inputs {
            nets.push(n.add_input(format!("i{i}")));
        }
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        for g in 0..gates {
            let kinds = [
                GateKind::And,
                GateKind::Nand,
                GateKind::Or,
                GateKind::Nor,
                GateKind::Xor,
                GateKind::Not,
            ];
            let kind = kinds[(next() % kinds.len() as u64) as usize];
            let fanin_count = if kind == GateKind::Not { 1 } else { 2 };
            let mut fanin = Vec::new();
            while fanin.len() < fanin_count {
                let cand = nets[(next() % nets.len() as u64) as usize];
                if !fanin.contains(&cand) {
                    fanin.push(cand);
                }
            }
            let id = n.add_gate(kind, format!("g{g}"), fanin).unwrap();
            nets.push(id);
        }
        // observe the last few nets
        for k in 0..3.min(nets.len()) {
            n.add_output(nets[nets.len() - 1 - k]);
        }
        n
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The fault simulator must agree with the naive per-pattern oracle on
    /// random circuits and patterns.
    #[test]
    fn fault_sim_matches_oracle(netlist in arb_netlist(), pseed in any::<u64>()) {
        use set_covering_reseeding::fault::reference;
        let faults = FaultList::collapsed(&netlist);
        let fsim = FaultSimulator::new(&netlist).unwrap();
        let w = netlist.inputs().len();
        let mut s = pseed | 1;
        let mut next = move || { s ^= s << 13; s ^= s >> 7; s ^= s << 17; s };
        let patterns: Vec<BitVec> = (0..8).map(|_| BitVec::random_with(w, &mut next)).collect();
        let dict = fsim.dictionary(&patterns, &faults);
        for (fid, fault) in faults.iter() {
            for (p, pattern) in patterns.iter().enumerate() {
                prop_assert_eq!(
                    dict.get(p, fid.index()),
                    reference::naive_detects(&netlist, fault, pattern),
                    "fault {} pattern {}", fault.describe(&netlist), pattern
                );
            }
        }
    }

    /// Every PODEM cube must detect its fault under arbitrary fill, and
    /// PODEM+fault-sim must agree about testability on exhaustive checking.
    #[test]
    fn podem_cubes_always_detect(netlist in arb_netlist()) {
        use set_covering_reseeding::atpg::{Podem, PodemOutcome};
        use set_covering_reseeding::fault::reference;
        prop_assume!(netlist.inputs().len() <= 5); // exhaustive check feasible
        let faults = FaultList::collapsed(&netlist);
        let podem = Podem::new(&netlist).unwrap();
        let w = netlist.inputs().len();
        for (_, fault) in faults.iter() {
            match podem.generate(fault) {
                PodemOutcome::Test(cube) => {
                    prop_assert!(reference::naive_detects(&netlist, fault, &cube.fill_const(false)));
                    prop_assert!(reference::naive_detects(&netlist, fault, &cube.fill_const(true)));
                }
                PodemOutcome::Untestable => {
                    // exhaustively confirm: no pattern detects it
                    for v in 0..(1u64 << w) {
                        let p = BitVec::from_u64(w, v);
                        prop_assert!(
                            !reference::naive_detects(&netlist, fault, &p),
                            "PODEM declared {} untestable but {} detects it",
                            fault.describe(&netlist), p
                        );
                    }
                }
                PodemOutcome::Aborted => {} // budget exhaustion is legal
            }
        }
    }

    /// Reduction + exact solving must equal plain exact solving on the
    /// matrices the real flow produces.
    #[test]
    fn reduction_is_lossless_on_flow_matrices(seed in any::<u64>(), tau in 0usize..16) {
        let netlist = genbench_generate(&genbench_profile("tiny64").unwrap(), seed % 16);
        let flow = ReseedingFlow::new(&netlist).unwrap();
        let cfg = FlowConfig::new(TpgKind::Adder).with_tau(tau);
        let initial = flow.builder().build(&cfg);
        let m = &initial.matrix;

        let direct = ExactSolver::new().solve(m);
        let reduction = reduce(m, &ReducerConfig::default());
        let (sub, _) = m.submatrix(&reduction.active_rows, &reduction.active_cols);
        let residual = ExactSolver::new().solve(&sub);
        prop_assert!(direct.optimal && residual.optimal);
        prop_assert_eq!(
            direct.rows.len(),
            reduction.essential_rows.len() + residual.rows.len()
        );
    }

    /// Greedy is valid and within the H(d) bound of the optimum on flow
    /// matrices.
    #[test]
    fn greedy_within_harmonic_bound(seed in any::<u64>()) {
        let netlist = genbench_generate(&genbench_profile("tiny64").unwrap(), seed % 16);
        let flow = ReseedingFlow::new(&netlist).unwrap();
        let cfg = FlowConfig::new(TpgKind::Adder).with_tau(8);
        let initial = flow.builder().build(&cfg);
        let m = &initial.matrix;
        let greedy = greedy_cover(m);
        prop_assert!(m.is_cover(&greedy));
        let exact = ExactSolver::new().solve(m);
        prop_assert!(exact.optimal);
        let d = (0..m.rows()).map(|r| m.row_weight(r)).max().unwrap_or(1);
        let harmonic: f64 = (1..=d).map(|k| 1.0 / k as f64).sum();
        prop_assert!(
            greedy.len() as f64 <= harmonic * exact.rows.len() as f64 + 1e-9,
            "greedy {} vs bound {:.2} × {}", greedy.len(), harmonic, exact.rows.len()
        );
    }

    /// TPG contract across all kinds: τ=0 seed reproduces the pattern, and
    /// expansion length is always τ+1.
    #[test]
    fn tpg_contract(width in 2usize..100, seed in any::<u64>(), tau in 0usize..40) {
        let mut s = seed | 1;
        let mut next = move || { s ^= s << 13; s ^= s >> 7; s ^= s << 17; s };
        for kind in [
            TpgKind::Adder, TpgKind::Subtracter, TpgKind::Multiplier,
            TpgKind::Lfsr, TpgKind::MultiPolyLfsr, TpgKind::Weighted,
        ] {
            let g = kind.build(width);
            let p = BitVec::random_with(g.width(), &mut next);
            let t = g.seed_for(&p, &mut next);
            prop_assert_eq!(g.expand(&t), vec![p.clone()], "{}", kind);
            let t = t.with_tau(tau);
            prop_assert_eq!(g.expand(&t).len(), tau + 1, "{}", kind);
            prop_assert_eq!(g.expand(&t)[0].clone(), p, "{}", kind);
        }
    }
}

/// Full-scan equivalence: one SeqSimulator cycle equals one combinational
/// evaluation of the scan core with (PI, state) inputs and (PO, next
/// state) outputs.
#[test]
fn scan_core_equals_one_sequential_cycle() {
    let seq = embedded::johnson3();
    let view = full_scan(&seq);
    let core = view.combinational();
    let psim = PackedSimulator::new(core).unwrap();
    let mut ssim = SeqSimulator::new(&seq).unwrap();

    for state_v in 0..8u64 {
        for in_v in 0..2u64 {
            let state = BitVec::from_u64(3, state_v);
            let input = BitVec::from_u64(1, in_v);
            // sequential machine: load state, apply input, capture
            ssim.load_state(&state);
            let po = ssim.step_pattern(&input);
            let next_state = ssim.state_pattern();
            // scan core: PI ++ PPI → PO ++ PPO
            let scan_in = input.concat(&state);
            let resp = psim
                .simulate_patterns(std::slice::from_ref(&scan_in))
                .remove(0);
            let core_po = resp.resized(view.original_po_count());
            // PPOs live above the original POs in the output list
            let mut core_next = BitVec::zeros(3);
            for i in 0..3 {
                core_next.set(i, resp.get(view.original_po_count() + i));
            }
            assert_eq!(core_po, po, "PO mismatch at state {state_v} in {in_v}");
            assert_eq!(
                core_next, next_state,
                "next-state mismatch at {state_v}/{in_v}"
            );
        }
    }
}
