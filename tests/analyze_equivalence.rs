//! Differential suite pinning the static-analysis pre-pass to the ATPG
//! ground truth.
//!
//! Three contracts, each over **every** genbench profile (scaled to a
//! small, fast gate budget — the analyses are size-uniform):
//!
//! 1. **`fbist check` is clean on every profile.** The generator never
//!    emits floating nets, dead constants, or structurally unobservable
//!    logic, and `analyze` must not invent any — its warning-level
//!    findings would otherwise poison the exit code of `fbist check` in
//!    CI pipelines over these circuits. (Provably untestable faults and
//!    implied constants are Info by design: real circuits legitimately
//!    contain redundancy, so they never flip the exit code.)
//! 2. **The pre-pass never changes what is detected.** `static_prepass`
//!    prunes only statically-*proven* untestable faults, which no pattern
//!    can detect — so the detected-fault set, the pattern list, and the
//!    random-phase statistics must be byte-identical with the knob on and
//!    off, at `jobs ∈ {1, 4}`. Only the classification of undetected
//!    faults may improve (aborted → untestable).
//! 3. **Every pruned fault really is untestable.** With the knob on,
//!    every statically-pruned fault must be reported in `untestable`,
//!    never in `aborted`, never detected.
//!
//! A proptest half cross-checks soundness on random circuits: a fault
//! proven untestable by [`untestable_faults`] is never detected by random
//! pattern sets nor by the full ATPG-generated test set.
//!
//! PR 10 extends both halves to static learning:
//!
//! * the prepass contracts also run with `static_learning` on, comparing
//!   (learning on, prepass off) against (learning on, prepass on): the
//!   detected set, pattern list, and random-phase statistics must be
//!   byte-identical, and every learned-pruned fault lands in `untestable`;
//! * proptests validate every learned implication, learned constant,
//!   implication-proved fault equivalence, and dominance edge against
//!   exhaustive truth-table simulation of the random circuit (≤ 4 inputs,
//!   so ≤ 16 patterns enumerate the whole input space).

use fbist_analyze::{fault_relations, untestable_faults_with, LearnedImplications};
use fbist_genbench::{all_profiles, generate, CircuitProfile};
use proptest::prelude::*;
use set_covering_reseeding::prelude::*;

/// Gate budget for the per-profile half: exercises every interface shape
/// while staying test-fast.
const GATE_BUDGET: f64 = 70.0;

fn small(p: &CircuitProfile) -> Netlist {
    generate(&p.scaled((GATE_BUDGET / p.gates as f64).min(1.0)), 1)
}

fn scanned(n: &Netlist) -> Netlist {
    if n.is_combinational() {
        n.clone()
    } else {
        full_scan(n).into_combinational()
    }
}

/// Contract 1: `analyze` reports nothing of warning severity or worse on
/// a generated profile — neither on the circuit as written (DFFs intact)
/// nor on its full-scan version.
fn assert_check_clean(netlist: &Netlist, label: &str) {
    for (variant, n) in [
        ("as-written", netlist.clone()),
        ("full-scan", scanned(netlist)),
    ] {
        let report = analyze(&n);
        assert!(
            !report.has_findings(),
            "{label} ({variant}): fbist check not clean:\n{}",
            report.render_text()
        );
    }
}

/// Contracts 2 and 3: prepass-on vs prepass-off ATPG, plus pruned-fault
/// classification, for one netlist.
fn assert_prepass_equivalent(netlist: &Netlist, label: &str) {
    let n = scanned(netlist);
    let atpg = Atpg::new(&n).unwrap();
    let faults = FaultList::collapsed(&n);
    let statically_proven = untestable_faults(&n, &faults).unwrap();
    for jobs in [1usize, 4] {
        let run = |static_prepass: bool| {
            atpg.run(
                &faults,
                &AtpgConfig {
                    jobs,
                    static_prepass,
                    ..AtpgConfig::default()
                },
            )
        };
        let off = run(false);
        let on = run(true);
        // detection must be bit-identical: same detected set, same
        // patterns, same random-phase statistics
        assert_eq!(
            off.detected, on.detected,
            "{label} jobs={jobs}: detected set changed"
        );
        assert_eq!(
            off.patterns, on.patterns,
            "{label} jobs={jobs}: patterns changed"
        );
        assert_eq!(
            off.random_detected, on.random_detected,
            "{label} jobs={jobs}: random-phase statistics changed"
        );
        // classification may only improve: pruned faults are untestable,
        // never aborted, never detected
        for (id, f) in faults.iter() {
            if !statically_proven[id.index()] {
                continue;
            }
            assert!(
                on.untestable.contains(&id),
                "{label} jobs={jobs}: pruned fault {} not reported untestable",
                f.describe(&n)
            );
            assert!(
                !on.aborted.contains(&id),
                "{label} jobs={jobs}: pruned fault {} still aborted",
                f.describe(&n)
            );
            assert!(
                !on.detected.get(id.index()),
                "{label} jobs={jobs}: pruned fault {} detected — unsound proof",
                f.describe(&n)
            );
        }
        assert!(
            on.untestable.len() >= off.untestable.len(),
            "{label} jobs={jobs}: prepass lost untestable classifications"
        );
    }

    // The same contract with static learning on: the learned database
    // upgrades the prepass (deeper proofs) and seeds PODEM, but pruning
    // still must not change what is detected — only reclassify.
    let db = LearnedImplications::learn(&n).unwrap();
    let learned_proven = untestable_faults_with(&n, &faults, Some(&db)).unwrap();
    for (i, &p) in statically_proven.iter().enumerate() {
        assert!(
            !p || learned_proven[i],
            "{label}: learning dropped a plain untestability verdict"
        );
    }
    let run = |static_prepass: bool| {
        atpg.run(
            &faults,
            &AtpgConfig {
                static_prepass,
                static_learning: true,
                ..AtpgConfig::default()
            },
        )
    };
    let off = run(false);
    let on = run(true);
    assert_eq!(
        off.detected, on.detected,
        "{label} learning: detected set changed by the prepass"
    );
    assert_eq!(
        off.patterns, on.patterns,
        "{label} learning: patterns changed by the prepass"
    );
    assert_eq!(
        off.random_detected, on.random_detected,
        "{label} learning: random-phase statistics changed by the prepass"
    );
    for (id, f) in faults.iter() {
        if !learned_proven[id.index()] {
            continue;
        }
        assert!(
            on.untestable.contains(&id) && !on.aborted.contains(&id),
            "{label} learning: pruned fault {} not reported untestable",
            f.describe(&n)
        );
        assert!(
            !on.detected.get(id.index()) && !off.detected.get(id.index()),
            "{label} learning: pruned fault {} detected — unsound proof",
            f.describe(&n)
        );
    }
}

macro_rules! analyze_equivalence_tests {
    ($($test:ident => $profile:literal),+ $(,)?) => {$(
        mod $test {
            use super::*;

            #[test]
            fn check_is_clean() {
                let p = genbench_profile($profile).expect("profile registered");
                assert_check_clean(&small(&p), $profile);
            }

            #[test]
            fn prepass_preserves_detection() {
                let p = genbench_profile($profile).expect("profile registered");
                assert_prepass_equivalent(&small(&p), $profile);
            }
        }
    )+};
}

// one module per profile so the harness runs them in parallel
analyze_equivalence_tests! {
    analyze_c499 => "c499",
    analyze_c880 => "c880",
    analyze_c1355 => "c1355",
    analyze_c1908 => "c1908",
    analyze_c7552 => "c7552",
    analyze_s420 => "s420",
    analyze_s641 => "s641",
    analyze_s820 => "s820",
    analyze_s838 => "s838",
    analyze_s953 => "s953",
    analyze_s1238 => "s1238",
    analyze_s1423 => "s1423",
    analyze_s5378 => "s5378",
    analyze_s9234 => "s9234",
    analyze_s13207 => "s13207",
    analyze_s15850 => "s15850",
    analyze_tiny64 => "tiny64",
    analyze_mid256 => "mid256",
    analyze_big3500 => "big3500",
    analyze_xl7000 => "xl7000",
}

/// Hand-written dead-logic fixtures: constant cones *with fanout* feeding
/// gates through two or more controlling pins — a class genbench never
/// emits, and exactly where an unsound observability analysis would prune
/// testable faults (a single fault in a shared upstream driver flips every
/// controlling pin at once and is detectable).
const DEAD_LOGIC_FIXTURES: &[(&str, &str)] = &[
    (
        "shared-const0-and",
        "INPUT(a)\nINPUT(b)\nOUTPUT(h)\nOUTPUT(w)\n\
         c = CONST0()\ns = BUFF(c)\nt1 = BUFF(s)\nt2 = BUFF(s)\n\
         h = AND(t1, t2)\nw = NAND(a, b)\n",
    ),
    (
        "shared-const1-or",
        "INPUT(a)\nOUTPUT(y)\nk = CONST1()\nu = BUFF(k)\n\
         p = BUFF(u)\nq = BUFF(u)\ny = OR(p, q, a)\n",
    ),
    (
        "independent-const-pins",
        "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nOUTPUT(z)\n\
         c0 = CONST0()\nc1 = CONST0()\nb0 = BUFF(c0)\nb1 = BUFF(c1)\n\
         y = AND(b0, b1, a)\nz = NOR(a, b)\n",
    ),
    (
        "const-fanout-same-net-pins",
        "INPUT(a)\nOUTPUT(y)\nOUTPUT(z)\n\
         c = CONST1()\nm = BUFF(c)\ny = NOR(m, m)\nz = AND(a, c)\n",
    ),
];

/// The dead-logic fixtures go through the same prepass-on/off contracts
/// as the genbench profiles: detection must be byte-identical and every
/// pruned fault really untestable, even with shared-fanout constant cones.
#[test]
fn dead_logic_fixtures_prepass_preserves_detection() {
    for (label, src) in DEAD_LOGIC_FIXTURES {
        let n = bench::parse(src).expect(label);
        assert_prepass_equivalent(&n, label);
    }
}

/// The shared-cone fixtures contain dead logic (constant nets) but every
/// gate still has a sensitisable path to an output — `fbist check` must
/// flag the constants without inventing `unobservable` findings.
#[test]
fn dead_logic_fixtures_have_no_false_unobservable_findings() {
    for (label, src) in ["shared-const0-and", "const-fanout-same-net-pins"]
        .iter()
        .map(|l| {
            DEAD_LOGIC_FIXTURES
                .iter()
                .find(|(name, _)| name == l)
                .expect("fixture registered")
        })
    {
        let n = bench::parse(src).expect(label);
        let report = analyze(&n);
        let codes: Vec<&str> = report.findings.iter().map(|f| f.code).collect();
        assert!(codes.contains(&"constant-net"), "{label}: {codes:?}");
        assert!(
            !codes.contains(&"unobservable"),
            "{label}: false unobservable finding:\n{}",
            report.render_text()
        );
    }
}

#[test]
fn analyze_macro_covers_every_profile() {
    // fail loudly if a profile is ever added without an analyze test
    assert_eq!(
        all_profiles().len(),
        20,
        "update analyze_equivalence_tests!"
    );
}

/// Strategy: a random small netlist with *deliberate* redundancy — gates
/// may reuse one net on several pins and reconverge through inverters, so
/// the untestability pre-pass has something to prove. CONST0/CONST1 gates
/// are emitted too; their nets get reused like any other, producing
/// constant cones with fanout and gates with several constant controlling
/// pins — the class where observability blocking must stay sound.
fn arb_redundant_netlist() -> impl Strategy<Value = Netlist> {
    (2usize..5, 5usize..30, any::<u64>()).prop_map(|(inputs, gates, seed)| {
        let mut n = Netlist::new("prop");
        let mut nets = Vec::new();
        for i in 0..inputs {
            nets.push(n.add_input(format!("i{i}")));
        }
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        for g in 0..gates {
            let kinds = [
                GateKind::And,
                GateKind::Nand,
                GateKind::Or,
                GateKind::Nor,
                GateKind::Xor,
                GateKind::Not,
                GateKind::Buff,
                GateKind::Const0,
                GateKind::Const1,
            ];
            let kind = kinds[(next() % kinds.len() as u64) as usize];
            let fanin_count = match kind {
                GateKind::Const0 | GateKind::Const1 => 0,
                GateKind::Not | GateKind::Buff => 1,
                _ => 2,
            };
            // duplicates allowed on purpose: AND(x, x)-style gates and
            // reconvergent pairs are where untestable faults live
            let fanin: Vec<_> = (0..fanin_count)
                .map(|_| nets[(next() % nets.len() as u64) as usize])
                .collect();
            let id = n.add_gate(kind, format!("g{g}"), fanin).unwrap();
            nets.push(id);
        }
        for k in 0..2.min(nets.len()) {
            n.add_output(nets[nets.len() - 1 - k]);
        }
        n
    })
}

/// Good-circuit truth tables: net values for every input pattern. The
/// random netlists have at most 4 inputs, so the full space is ≤ 16 rows.
fn truth_tables(n: &Netlist) -> Vec<Vec<bool>> {
    let order = n.levelize().expect("combinational");
    let width = n.inputs().len();
    (0..1u32 << width)
        .map(|pat| {
            let mut val = vec![false; n.gate_count()];
            for &id in &order {
                let g = n.gate(id);
                val[id.index()] = match g.kind() {
                    GateKind::Input => (pat >> n.input_position(id).expect("input")) & 1 == 1,
                    GateKind::Const0 => false,
                    GateKind::Const1 => true,
                    GateKind::Dff => false,
                    kind => {
                        let pins: Vec<u64> =
                            g.fanin().iter().map(|f| val[f.index()] as u64).collect();
                        fbist_netlist::eval_packed(kind, &pins) & 1 == 1
                    }
                };
            }
            val
        })
        .collect()
}

/// Per-pattern detection masks for every fault: row `p` answers "which
/// faults does input pattern `p` alone detect".
fn detection_tables(n: &Netlist, faults: &FaultList) -> Vec<BitVec> {
    let fsim = FaultSimulator::new(n).unwrap();
    let width = n.inputs().len();
    (0..1u32 << width)
        .map(|pat| {
            let p = BitVec::from_u64(width, pat as u64);
            fsim.detects(std::slice::from_ref(&p), faults)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Soundness of the learned database itself: every learned implication
    /// and every learned constant holds on every input pattern.
    #[test]
    fn learned_implications_hold_exhaustively(netlist in arb_redundant_netlist()) {
        let db = LearnedImplications::learn(&netlist).unwrap();
        let tables = truth_tables(&netlist);
        for (gid, g) in netlist.iter() {
            if let Some(b) = db.constant(gid) {
                for row in &tables {
                    prop_assert_eq!(
                        row[gid.index()], b,
                        "learned constant {}={} violated", g.name(), b
                    );
                }
            }
            for v in [false, true] {
                for (w, c) in db.implied(gid, v) {
                    for row in &tables {
                        if row[gid.index()] == v {
                            prop_assert_eq!(
                                row[w.index()], c,
                                "learned {}={} => {}={} violated",
                                g.name(), v, netlist.gate(w).name(), c
                            );
                        }
                    }
                }
            }
        }
    }

    /// Soundness of the implication-derived fault relations: equivalent
    /// faults share their exact test set, every test of a dominated fault
    /// also detects its dominator, and the learned untestability mask
    /// (which closes over both) never covers a detectable fault.
    #[test]
    fn learned_fault_relations_hold_exhaustively(netlist in arb_redundant_netlist()) {
        let faults = FaultList::full(&netlist);
        let db = LearnedImplications::learn(&netlist).unwrap();
        let rel = fault_relations(&netlist, &faults, &db);
        let detected = detection_tables(&netlist, &faults);
        let names: Vec<String> = faults.iter().map(|(_, f)| f.describe(&netlist)).collect();

        for (id, _) in faults.iter() {
            let rep = rel.class_of[id.index()] as usize;
            if rep == id.index() {
                continue;
            }
            for (pat, det) in detected.iter().enumerate() {
                prop_assert_eq!(
                    det.get(id.index()), det.get(rep),
                    "pattern {:b} splits claimed-equivalent faults {} and {}",
                    pat, &names[id.index()], &names[rep]
                );
            }
        }
        for &(dom, sub) in &rel.dominances {
            for (pat, det) in detected.iter().enumerate() {
                prop_assert!(
                    !det.get(sub as usize) || det.get(dom as usize),
                    "pattern {:b} detects dominated fault {} but not dominator {}",
                    pat, names[sub as usize], names[dom as usize]
                );
            }
        }

        let plain = untestable_faults(&netlist, &faults).unwrap();
        let learned = untestable_faults_with(&netlist, &faults, Some(&db)).unwrap();
        for (id, f) in faults.iter() {
            prop_assert!(
                !plain[id.index()] || learned[id.index()],
                "learning dropped the plain verdict on {}",
                f.describe(&netlist)
            );
            if learned[id.index()] {
                for det in &detected {
                    prop_assert!(
                        !det.get(id.index()),
                        "learned pass claims {} untestable but a pattern detects it",
                        f.describe(&netlist)
                    );
                }
            }
        }
    }

    /// Soundness: a statically-proven untestable fault is never detected —
    /// not by random patterns, not by the full ATPG test set.
    #[test]
    fn proven_untestable_faults_are_never_detected(
        netlist in arb_redundant_netlist(),
        pseed in any::<u64>(),
    ) {
        let faults = FaultList::full(&netlist);
        let mask = untestable_faults(&netlist, &faults).unwrap();
        let fsim = FaultSimulator::new(&netlist).unwrap();

        // random pattern sets
        let w = netlist.inputs().len();
        let mut s = pseed | 1;
        let mut next = move || { s ^= s << 13; s ^= s >> 7; s ^= s << 17; s };
        let random: Vec<BitVec> = (0..32).map(|_| BitVec::random_with(w, &mut next)).collect();
        let detected = fsim.detects(&random, &faults);

        // the full ATPG run (targets the same list, generates its own set)
        let atpg = Atpg::new(&netlist).unwrap();
        let r = atpg.run(&faults, &AtpgConfig::default());
        let atpg_detected = fsim.detects(&r.patterns, &faults);

        for (id, f) in faults.iter() {
            if !mask[id.index()] {
                continue;
            }
            prop_assert!(
                !detected.get(id.index()),
                "random patterns detect proven-untestable {}",
                f.describe(&netlist)
            );
            prop_assert!(
                !atpg_detected.get(id.index()) && !r.detected.get(id.index()),
                "ATPG detects proven-untestable {}",
                f.describe(&netlist)
            );
        }
    }
}
