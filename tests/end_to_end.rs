//! End-to-end integration tests: the full paper flow across circuits and
//! TPG families, with independent verification by replay.

use set_covering_reseeding::prelude::*;

/// Replays a report's triplets through a freshly built TPG and checks the
/// fault coverage claim with a fresh fault simulator.
fn verify_by_replay(netlist: &Netlist, report: &ReseedingReport, kind: TpgKind) {
    let universe = FaultList::collapsed(netlist);
    let atpg = Atpg::new(netlist).unwrap();
    // reconstruct F with the same flow defaults
    let cfg = FlowConfig::new(kind);
    let res = atpg.run(&universe, &cfg.atpg);
    let target = universe.subset(&res.detected_ids());
    assert_eq!(target.len(), report.target_faults, "same F");

    let tpg = kind.build(netlist.inputs().len());
    let mut patterns = Vec::new();
    for sel in &report.selected {
        patterns.extend(tpg.expand(&sel.triplet));
    }
    assert_eq!(
        patterns.len(),
        report.test_length(),
        "trimmed lengths add up"
    );
    let fsim = FaultSimulator::new(netlist).unwrap();
    let detected = fsim.detects(&patterns, &target);
    assert_eq!(
        detected.count_ones(),
        target.len(),
        "replayed solution must cover all of F"
    );
}

#[test]
fn embedded_circuits_all_tpgs() {
    for netlist in [embedded::c17(), embedded::adder4(), embedded::majority()] {
        for kind in [TpgKind::Adder, TpgKind::Subtracter, TpgKind::Lfsr] {
            let flow = ReseedingFlow::new(&netlist).unwrap();
            let report = flow.run(&FlowConfig::new(kind).with_tau(7));
            assert!(
                report.covers_all_target_faults(),
                "{}/{kind}",
                netlist.name()
            );
            verify_by_replay(&netlist, &report, kind);
        }
    }
}

#[test]
fn synthetic_circuit_full_flow_with_replay() {
    let profile = genbench_profile("tiny64").unwrap();
    let netlist = genbench_generate(&profile, 11);
    let flow = ReseedingFlow::new(&netlist).unwrap();
    for kind in [TpgKind::Adder, TpgKind::Multiplier] {
        let report = flow.run(&FlowConfig::new(kind).with_tau(31));
        assert!(report.covers_all_target_faults());
        assert!(report.solution_optimal);
        verify_by_replay(&netlist, &report, kind);
    }
}

#[test]
fn sequential_circuit_through_scan() {
    let johnson = embedded::johnson3();
    assert!(!johnson.is_combinational());
    let core = full_scan(&johnson).into_combinational();
    let flow = ReseedingFlow::new(&core).unwrap();
    let report = flow.run(&FlowConfig::new(TpgKind::Adder).with_tau(15));
    assert!(report.covers_all_target_faults());
    verify_by_replay(&core, &report, TpgKind::Adder);
}

#[test]
fn solution_is_no_larger_than_initial() {
    let netlist = genbench_generate(&genbench_profile("tiny64").unwrap(), 2);
    let flow = ReseedingFlow::new(&netlist).unwrap();
    let report = flow.run(&FlowConfig::new(TpgKind::Adder).with_tau(15));
    assert!(report.triplet_count() <= report.initial_triplets);
    assert!(report.triplet_count() >= 1);
}

#[test]
fn flow_is_deterministic() {
    let netlist = genbench_generate(&genbench_profile("tiny64").unwrap(), 5);
    let flow = ReseedingFlow::new(&netlist).unwrap();
    let cfg = FlowConfig::new(TpgKind::Subtracter)
        .with_tau(15)
        .with_seed(99);
    let a = flow.run(&cfg);
    let b = flow.run(&cfg);
    assert_eq!(a, b);
}

#[test]
fn gatsby_baseline_runs_and_reports_cost() {
    let netlist = embedded::c17();
    let universe = FaultList::collapsed(&netlist);
    let gatsby = Gatsby::new(&netlist).unwrap();
    let res = gatsby.run(&universe, &GatsbyConfig::default());
    assert!(res.complete());
    // the paper's cost criticism: GA burns at least one fault simulation
    // per chromosome per generation per round
    assert!(res.fault_sim_calls >= res.triplet_count() * 24 * 12);
}

#[test]
fn set_covering_uses_fewer_simulations_than_gatsby() {
    // §4: "W.r.t. GATSBY, the number of fault simulations is reduced and
    // limited to the construction of the Detection Matrix." The flow needs
    // |ATPGTS| triplet simulations for the matrix + |N| for trimming; the
    // GA needs population × generations per round.
    let netlist = genbench_generate(&genbench_profile("tiny64").unwrap(), 3);
    let flow = ReseedingFlow::new(&netlist).unwrap();
    let cfg = FlowConfig::new(TpgKind::Adder).with_tau(15);
    let report = flow.run(&cfg);
    let sc_sims = report.initial_triplets + report.triplet_count();

    let init = flow.builder().build(&cfg);
    let gatsby = Gatsby::new(&netlist).unwrap();
    let g = gatsby.run(
        &init.target_faults,
        &GatsbyConfig {
            tpg: TpgKind::Adder,
            tau: 15,
            ..GatsbyConfig::default()
        },
    );
    assert!(
        g.fault_sim_calls > 5 * sc_sims,
        "GA {} sims vs SC {} sims",
        g.fault_sim_calls,
        sc_sims
    );
}
