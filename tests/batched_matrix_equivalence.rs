//! Differential suite pinning the cross-row batched matrix-build engine
//! to the per-row one.
//!
//! For **every** genbench profile (scaled to a small, fast gate budget —
//! the batching machinery is identical at every size), a TPG from each
//! family (accumulator-based `add`, LFSR-based `lfsr`), `jobs ∈ {1, 4}`
//! and `τ ∈ {0, 3, 31}`, the batched engine must produce a Detection
//! Matrix **byte-for-byte identical** to the per-row engine's, and the
//! τ-sweep must trace the identical curve. This is the construction-side
//! twin of the `parallel_equivalence` (jobs) and
//! `sparse_dense_equivalence` (backend) contracts: the matrix-build
//! engine may only change wall-clock time, never a single bit of any
//! artefact.
//!
//! The suite also pins the engine's reason to exist: on every profile
//! scaled to a uniform instance size, the batched planner packs the τ=3
//! pattern streams at ≥ 90 % lane occupancy (the per-row build is stuck
//! at `(τ+1)/64 = 6.25 %`), and the `PackedSimulator` lane counters agree
//! with the plan.

use fbist_fault::BatchPlan;
use fbist_genbench::{all_profiles, generate, CircuitProfile};
use fbist_netlist::Netlist;
use set_covering_reseeding::prelude::*;

/// Gate budget for the equivalence half: exercises every interface shape
/// while staying test-fast.
const GATE_BUDGET: f64 = 70.0;

/// Uniform gate target for the occupancy half: large enough that every
/// profile's ATPG yields a pattern stream whose final shared block no
/// longer dominates the lane count.
const OCCUPANCY_GATES: f64 = 600.0;

const TAUS: [usize; 3] = [0, 3, 31];

fn circuit_at(p: &CircuitProfile, factor: f64) -> Netlist {
    let n = generate(&p.scaled(factor), 1);
    if n.is_combinational() {
        n
    } else {
        full_scan(&n).into_combinational()
    }
}

fn small(p: &CircuitProfile) -> Netlist {
    circuit_at(p, (GATE_BUDGET / p.gates as f64).min(1.0))
}

/// Batched vs per-row `matrix_for`, byte-for-byte, across jobs × τ, on
/// one shared ATPG run (exactly how the τ-sweep reuses it).
fn assert_engines_equivalent(netlist: &Netlist, tpg_kind: TpgKind, label: &str) {
    let cfg = FlowConfig::new(tpg_kind);
    let builder = InitialReseedingBuilder::new(netlist).expect("combinational circuit");
    let base = builder.build(&cfg);
    let tpg = tpg_kind.build(netlist.inputs().len());

    for tau in TAUS {
        let build = |jobs: usize, engine: MatrixBuild| {
            builder.matrix_for(
                tpg.as_ref(),
                &base.atpg.patterns,
                &base.target_faults,
                tau,
                cfg.seed,
                jobs,
                engine,
                SimdWidth::Auto,
            )
        };
        let (ref_triplets, ref_matrix) = build(1, MatrixBuild::PerRow);
        for jobs in [1, 4] {
            for engine in [MatrixBuild::PerRow, MatrixBuild::Batched, MatrixBuild::Auto] {
                let (triplets, matrix) = build(jobs, engine);
                assert_eq!(
                    ref_triplets, triplets,
                    "{label} τ={tau} jobs={jobs} {engine}: triplets differ"
                );
                assert_eq!(
                    ref_matrix.row_major(),
                    matrix.row_major(),
                    "{label} τ={tau} jobs={jobs} {engine}: Detection Matrix \
                     differs from per-row/jobs=1"
                );
            }
        }
    }
}

#[test]
fn every_profile_matches_per_row_with_accumulator_tpg() {
    for p in all_profiles() {
        assert_engines_equivalent(&small(&p), TpgKind::Adder, &p.name);
    }
}

#[test]
fn every_profile_matches_per_row_with_lfsr_tpg() {
    for p in all_profiles() {
        assert_engines_equivalent(&small(&p), TpgKind::Lfsr, &p.name);
    }
}

#[test]
fn sweep_points_are_engine_invariant() {
    // the τ-sweep drives matrix_for through its other public entry point;
    // the whole curve (reports included) must be engine-invariant, for
    // both a serial and a 4-worker pool
    for p in [
        genbench_profile("tiny64").unwrap(),
        genbench_profile("mid256").unwrap(),
    ] {
        let n = small(&p);
        for jobs in [1, 4] {
            let curve = |engine: MatrixBuild| {
                tradeoff_sweep(
                    &n,
                    &FlowConfig::new(TpgKind::Adder)
                        .with_jobs(jobs)
                        .with_matrix_build(engine),
                    &TAUS,
                )
                .unwrap()
            };
            let per_row = curve(MatrixBuild::PerRow);
            assert_eq!(
                per_row,
                curve(MatrixBuild::Batched),
                "{} jobs={jobs}: batched sweep curve differs",
                p.name
            );
            assert_eq!(
                per_row,
                curve(MatrixBuild::Auto),
                "{} jobs={jobs}: auto sweep curve differs",
                p.name
            );
        }
    }
}

/// The batched planner must reach ≥ 90 % lane occupancy at τ = 3 (the
/// per-row build occupies 4 of 64 lanes — 6.25 %), and the simulator's
/// lane counters must agree with the plan exactly.
fn assert_planner_occupancy(name: &str) {
    let p = genbench_profile(name).expect("profile registered");
    let n = circuit_at(&p, OCCUPANCY_GATES / p.gates as f64);
    let builder = InitialReseedingBuilder::new(&n).expect("combinational circuit");
    // W = 1 pinned: the ≥ 90 % bound and the block counters below are
    // stated against the narrow 64-lane plan (a wider block pads its tail
    // lanes, which is the width knob's business, not the planner's —
    // width-aware counters are pinned by `simd_width_equivalence`)
    let cfg = FlowConfig::new(TpgKind::Adder)
        .with_tau(3)
        .with_matrix_build(MatrixBuild::Batched)
        .with_simd_width(SimdWidth::W1);
    builder.fault_simulator().good_simulator().reset_occupancy();
    let init = builder.build(&cfg);

    // the plan is a pure function of the row lengths: every row is τ+1 = 4
    // expanded patterns
    let plan = BatchPlan::new(&vec![4; init.triplet_count()]);
    assert!(
        plan.occupancy() >= 0.9,
        "{name}: batched planner occupancy {:.3} < 0.9 ({} rows)",
        plan.occupancy(),
        init.triplet_count()
    );

    // and the simulator actually evaluated exactly those blocks
    let counted = builder.fault_simulator().good_simulator().occupancy();
    assert_eq!(
        counted.blocks as usize,
        plan.block_count(),
        "{name}: blocks"
    );
    assert_eq!(counted.lanes as usize, plan.total_lanes(), "{name}: lanes");
    assert!((counted.ratio() - plan.occupancy()).abs() < 1e-12, "{name}");
}

macro_rules! occupancy_tests {
    ($($test:ident => $profile:literal),+ $(,)?) => {$(
        #[test]
        fn $test() {
            assert_planner_occupancy($profile);
        }
    )+};
}

// one test per profile so the harness runs them in parallel (the τ=3
// build is ATPG-dominated at the uniform 600-gate scale)
occupancy_tests! {
    occupancy_c499 => "c499",
    occupancy_c880 => "c880",
    occupancy_c1355 => "c1355",
    occupancy_c1908 => "c1908",
    occupancy_c7552 => "c7552",
    occupancy_s420 => "s420",
    occupancy_s641 => "s641",
    occupancy_s820 => "s820",
    occupancy_s838 => "s838",
    occupancy_s953 => "s953",
    occupancy_s1238 => "s1238",
    occupancy_s1423 => "s1423",
    occupancy_s5378 => "s5378",
    occupancy_s9234 => "s9234",
    occupancy_s13207 => "s13207",
    occupancy_s15850 => "s15850",
    occupancy_tiny64 => "tiny64",
    occupancy_mid256 => "mid256",
    occupancy_big3500 => "big3500",
    occupancy_xl7000 => "xl7000",
}

#[test]
fn occupancy_macro_covers_every_profile() {
    // fail loudly if a profile is ever added without an occupancy test
    assert_eq!(all_profiles().len(), 20, "update occupancy_tests! above");
}
