//! Differential suite pinning the first-detection τ-sweep engine to the
//! per-τ one.
//!
//! For **every** genbench profile (scaled to a small, fast gate budget —
//! the thresholding machinery is identical at every size), a TPG from
//! each family (accumulator-based `add`, LFSR-based `lfsr`),
//! `jobs ∈ {1, 4}` and both covering backends, the first-detection sweep
//! must produce a curve **byte-for-byte identical** to the per-τ sweep's
//! — every [`SweepPoint`] including its full report — on a τ list that is
//! deliberately unsorted and duplicated. This is the sweep-level sibling
//! of the `parallel_equivalence` (jobs), `sparse_dense_equivalence`
//! (backend) and `batched_matrix_equivalence` (matrix engine) contracts:
//! the sweep engine may only change wall-clock time, never a single bit
//! of any artefact.
//!
//! The suite also pins the engine's reason to exist, the ISSUE's
//! acceptance criterion verbatim: on `mid256` at full scale with
//! `--taus 0,3,7,15,31,63`, the first-detection engine reproduces the
//! per-τ curve byte-for-byte while running **exactly one**
//! Detection-Matrix simulation pass (the builder's pass counter) and
//! strictly fewer simulated 64-lane blocks (the `PackedSimulator` lane
//! counters).
//!
//! [`SweepPoint`]: reseed_core::SweepPoint

use fbist_genbench::{all_profiles, generate, CircuitProfile};
use fbist_netlist::Netlist;
use set_covering_reseeding::prelude::*;

/// Gate budget for the per-profile equivalence half: exercises every
/// interface shape while staying test-fast.
const GATE_BUDGET: f64 = 70.0;

/// Deliberately unsorted, duplicated τ list: the first-detection engine
/// must dedupe, simulate once at max = 15, and still emit one point per
/// input τ in input order.
const TAUS: [usize; 4] = [7, 0, 3, 3];

fn small(p: &CircuitProfile) -> Netlist {
    let n = generate(&p.scaled((GATE_BUDGET / p.gates as f64).min(1.0)), 1);
    if n.is_combinational() {
        n
    } else {
        full_scan(&n).into_combinational()
    }
}

/// Per-τ vs first-detection vs auto, byte-for-byte, across jobs ×
/// backend, for one profile and TPG.
fn assert_sweeps_equivalent(netlist: &Netlist, tpg: TpgKind, label: &str) {
    for jobs in [1usize, 4] {
        for backend in [Backend::Dense, Backend::Sparse] {
            let curve = |engine: SweepEngine| {
                tradeoff_sweep(
                    netlist,
                    &FlowConfig::new(tpg)
                        .with_jobs(jobs)
                        .with_backend(backend)
                        .with_sweep_engine(engine),
                    &TAUS,
                )
                .unwrap()
            };
            let per_tau = curve(SweepEngine::PerTau);
            assert_eq!(per_tau.len(), TAUS.len(), "{label}");
            assert_eq!(
                per_tau,
                curve(SweepEngine::FirstDetection),
                "{label} jobs={jobs} backend={backend:?}: first-detection \
                 curve differs from per-τ"
            );
            assert_eq!(
                per_tau,
                curve(SweepEngine::Auto),
                "{label} jobs={jobs} backend={backend:?}: auto curve differs"
            );
        }
    }
}

macro_rules! sweep_equivalence_tests {
    ($($test:ident => $profile:literal),+ $(,)?) => {$(
        mod $test {
            use super::*;

            #[test]
            fn add() {
                let p = genbench_profile($profile).expect("profile registered");
                assert_sweeps_equivalent(&small(&p), TpgKind::Adder, $profile);
            }

            #[test]
            fn lfsr() {
                let p = genbench_profile($profile).expect("profile registered");
                assert_sweeps_equivalent(&small(&p), TpgKind::Lfsr, $profile);
            }
        }
    )+};
}

// one module per profile so the harness runs them in parallel
sweep_equivalence_tests! {
    sweep_c499 => "c499",
    sweep_c880 => "c880",
    sweep_c1355 => "c1355",
    sweep_c1908 => "c1908",
    sweep_c7552 => "c7552",
    sweep_s420 => "s420",
    sweep_s641 => "s641",
    sweep_s820 => "s820",
    sweep_s838 => "s838",
    sweep_s953 => "s953",
    sweep_s1238 => "s1238",
    sweep_s1423 => "s1423",
    sweep_s5378 => "s5378",
    sweep_s9234 => "s9234",
    sweep_s13207 => "s13207",
    sweep_s15850 => "s15850",
    sweep_tiny64 => "tiny64",
    sweep_mid256 => "mid256",
    sweep_big3500 => "big3500",
    sweep_xl7000 => "xl7000",
}

#[test]
fn sweep_macro_covers_every_profile() {
    // fail loudly if a profile is ever added without a sweep test
    assert_eq!(all_profiles().len(), 20, "update sweep_equivalence_tests!");
}

/// The acceptance criterion, end to end on `mid256` at full scale:
/// `--taus 0,3,7,15,31,63` with the first-detection engine is
/// byte-identical to the per-τ engine while performing exactly one matrix
/// simulation pass and evaluating strictly fewer 64-lane blocks.
#[test]
fn mid256_first_detection_single_pass_and_fewer_blocks() {
    let n = generate(&genbench_profile("mid256").unwrap(), 1);
    let taus = [0usize, 3, 7, 15, 31, 63];
    let flow = ReseedingFlow::new(&n).unwrap();
    let sim = flow.builder().fault_simulator().good_simulator();

    flow.builder().reset_matrix_sim_passes();
    sim.reset_occupancy();
    let per_tau = tradeoff_sweep_with(
        &flow,
        &FlowConfig::new(TpgKind::Adder).with_sweep_engine(SweepEngine::PerTau),
        &taus,
    );
    let pt_passes = flow.builder().matrix_sim_passes();
    let pt_occupancy = sim.occupancy();
    assert_eq!(pt_passes, taus.len() as u64, "per-τ: one pass per point");

    flow.builder().reset_matrix_sim_passes();
    sim.reset_occupancy();
    let first_detection = tradeoff_sweep_with(
        &flow,
        &FlowConfig::new(TpgKind::Adder).with_sweep_engine(SweepEngine::FirstDetection),
        &taus,
    );
    let fd_passes = flow.builder().matrix_sim_passes();
    let fd_occupancy = sim.occupancy();

    assert_eq!(
        per_tau, first_detection,
        "first-detection curve must be byte-identical to per-τ"
    );
    assert_eq!(
        fd_passes, 1,
        "first-detection must run exactly one matrix simulation pass"
    );
    // the per-point trimming simulations are identical on both sides
    // (identical reports), so the strict block gap is pure matrix work
    assert!(
        fd_occupancy.blocks < pt_occupancy.blocks,
        "first-detection evaluated {} blocks, per-τ {} — expected strictly fewer",
        fd_occupancy.blocks,
        pt_occupancy.blocks
    );
}
