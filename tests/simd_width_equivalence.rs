//! Differential suite pinning the SIMD block width (`--simd-width`,
//! [`FlowConfig::simd_width`], [`AtpgConfig::simd_width`]) bit-identical.
//!
//! For **every** genbench profile (scaled to a small, fast gate budget —
//! the width machinery is identical at every size), a TPG from each
//! family (accumulator-based `add`, LFSR-based `lfsr`) and
//! `jobs ∈ {1, 4}`, the narrow `W = 1` engine, the explicit `W = 4`
//! engine and the `auto` width must produce **byte-for-byte identical**
//! results at every layer that touches the packed fault simulator: the
//! ATPG run, the Detection Matrix (both construction engines), the
//! first-detection matrix, and the full reseeding report. This is the
//! width twin of the `parallel_equivalence` (jobs),
//! `sparse_dense_equivalence` (backend), `batched_matrix_equivalence`
//! (matrix engine) and `sweep_equivalence` (sweep engine) contracts —
//! together they are the proof obligations behind the
//! `THROUGHPUT_KNOBS` stage-key exclusion manifest that `xtask lint`
//! cross-checks.
//!
//! Why equality holds by construction: lane `k` of a W-wide block is
//! lane `k` of the flat `64·W` lane space, detection is a monotone OR
//! over lanes and first-detection a min over ascending flat-lane
//! indices, so re-chunking the same lane stream into wider blocks can
//! never change a reduction result. This suite is the executable form
//! of that argument.

use fbist_genbench::{all_profiles, generate, CircuitProfile};
use fbist_netlist::Netlist;
use set_covering_reseeding::prelude::*;

/// Gate budget: exercises every interface shape while staying test-fast
/// (same budget as `batched_matrix_equivalence`).
const GATE_BUDGET: f64 = 70.0;

/// The widths compared against the `W = 1` reference: one explicit wide
/// engine and the auto rule (which may resolve to any width per call).
const WIDE: [SimdWidth; 2] = [SimdWidth::W4, SimdWidth::Auto];

fn small(p: &CircuitProfile) -> Netlist {
    let factor = (GATE_BUDGET / p.gates as f64).min(1.0);
    let n = generate(&p.scaled(factor), 1);
    if n.is_combinational() {
        n
    } else {
        full_scan(&n).into_combinational()
    }
}

/// Every width must reproduce the `W = 1` ATPG run, Detection Matrix
/// (per-row and batched engines), first-detection matrix and full
/// reseeding report, for a serial and a 4-worker pool.
fn assert_widths_equivalent(netlist: &Netlist, tpg_kind: TpgKind, label: &str) {
    let builder = InitialReseedingBuilder::new(netlist).expect("combinational circuit");
    let tpg = tpg_kind.build(netlist.inputs().len());
    for jobs in [1usize, 4] {
        let cfg_at = |w: SimdWidth| {
            FlowConfig::new(tpg_kind)
                .with_tau(31)
                .with_jobs(jobs)
                .with_simd_width(w)
        };

        // the ATPG phases (random batches, round dictionaries, drop
        // passes, compaction replay) all go through the width dispatch
        let ref_base = builder.atpg_base(&cfg_at(SimdWidth::W1));
        for w in WIDE {
            let base = builder.atpg_base(&cfg_at(w));
            assert_eq!(
                ref_base.atpg, base.atpg,
                "{label} jobs={jobs} {w}: ATPG result differs from W=1"
            );
        }

        // matrix + first-detection, under both construction engines and
        // the τ regimes that matter (τ=3 packs many rows per wide block,
        // τ=31 spans blocks within a row)
        for engine in [MatrixBuild::PerRow, MatrixBuild::Batched] {
            for tau in [3usize, 31] {
                let matrix_at = |w: SimdWidth| {
                    builder.matrix_for(
                        tpg.as_ref(),
                        &ref_base.atpg.patterns,
                        &ref_base.target_faults,
                        tau,
                        cfg_at(w).seed,
                        jobs,
                        engine,
                        w,
                    )
                };
                let (ref_triplets, ref_matrix) = matrix_at(SimdWidth::W1);
                let fdm_at = |w: SimdWidth| {
                    builder.first_detection_matrix_for(
                        tpg.as_ref(),
                        &ref_base.atpg.patterns,
                        &ref_base.target_faults,
                        tau,
                        cfg_at(w).seed,
                        jobs,
                        engine,
                        w,
                    )
                };
                let (_, ref_fdm) = fdm_at(SimdWidth::W1);
                for w in WIDE {
                    let (triplets, matrix) = matrix_at(w);
                    assert_eq!(
                        ref_triplets, triplets,
                        "{label} jobs={jobs} τ={tau} {engine} {w}: triplets differ"
                    );
                    assert_eq!(
                        ref_matrix.row_major(),
                        matrix.row_major(),
                        "{label} jobs={jobs} τ={tau} {engine} {w}: Detection Matrix \
                         differs from W=1"
                    );
                    let (_, fdm) = fdm_at(w);
                    assert_eq!(
                        ref_fdm.csr_parts(),
                        fdm.csr_parts(),
                        "{label} jobs={jobs} τ={tau} {engine} {w}: first-detection \
                         matrix differs from W=1"
                    );
                }
            }
        }

        // end to end: the whole report (cover, trim, ROM accounting)
        let flow = ReseedingFlow::new(netlist).expect("combinational circuit");
        let ref_report = flow.run(&cfg_at(SimdWidth::W1));
        for w in WIDE {
            assert_eq!(
                ref_report,
                flow.run(&cfg_at(w)),
                "{label} jobs={jobs} {w}: reseeding report differs from W=1"
            );
        }
    }
}

#[test]
fn every_profile_matches_width_one_with_accumulator_tpg() {
    for p in all_profiles() {
        assert_widths_equivalent(&small(&p), TpgKind::Adder, &p.name);
    }
}

#[test]
fn every_profile_matches_width_one_with_lfsr_tpg() {
    for p in all_profiles() {
        assert_widths_equivalent(&small(&p), TpgKind::Lfsr, &p.name);
    }
}

/// Static learning on, across every profile: the learned-implication
/// database is a pure function of the netlist — computed once before the
/// fault rounds — and the PODEM seeding it feeds is per-fault pure, so
/// learning must not introduce any width (or jobs) dependence into the
/// ATPG result. This is the learning half of the PR-10 invariance
/// obligation; `atpg_equivalence` pins the jobs axis per fill mode.
#[test]
fn atpg_with_static_learning_is_width_invariant() {
    for p in all_profiles() {
        let n = small(&p);
        let builder = InitialReseedingBuilder::new(&n).expect("combinational circuit");
        for jobs in [1usize, 4] {
            let base_at = |w: SimdWidth| {
                builder.atpg_base(
                    &FlowConfig::new(TpgKind::Adder)
                        .with_tau(31)
                        .with_jobs(jobs)
                        .with_simd_width(w)
                        .with_static_learning(true),
                )
            };
            let narrow = base_at(SimdWidth::W1);
            for w in WIDE {
                assert_eq!(
                    narrow.atpg,
                    base_at(w).atpg,
                    "{} jobs={jobs} {w}: learning-on ATPG differs from W=1",
                    p.name
                );
            }
        }
    }
}

#[test]
fn sweep_curves_are_width_invariant() {
    // the τ-sweep drives the simulator through its remaining public entry
    // point (shared first-detection pass + thresholding); the whole curve
    // must be width-invariant too
    let p = genbench_profile("mid256").unwrap();
    let n = small(&p);
    let curve = |w: SimdWidth| {
        tradeoff_sweep(
            &n,
            &FlowConfig::new(TpgKind::Adder).with_simd_width(w),
            &[0, 3, 31],
        )
        .unwrap()
    };
    let narrow = curve(SimdWidth::W1);
    for w in WIDE {
        assert_eq!(narrow, curve(w), "{w}: sweep curve differs from W=1");
    }
}
