//! Differential suite pinning the parallel pipeline to the sequential one.
//!
//! For **every** genbench profile (scaled to a small, fast gate budget —
//! the parallel machinery is identical at every size) and for a TPG from
//! each family (accumulator-based `add`, LFSR-based `lfsr`), the `jobs=4`
//! flow must produce
//!
//! 1. a byte-identical Detection Matrix,
//! 2. an identical reduction anatomy (essential rows, residual, event
//!    log), and
//! 3. an identical final cover / [`ReseedingReport`]
//!
//! compared to `jobs=1` with the same seed. This is the workspace's
//! determinism-under-parallelism contract: job counts may only change
//! wall-clock time, never a single bit of any artefact.

use fbist_genbench::{all_profiles, generate, CircuitProfile};
use fbist_netlist::Netlist;
use fbist_setcover::reduce;
use set_covering_reseeding::prelude::*;

/// Gate budget the profiles are scaled down to: the suite exercises every
/// interface shape (up to 207 scan inputs) while staying test-fast.
const GATE_BUDGET: f64 = 70.0;

const TAU: usize = 7;

fn small(p: &CircuitProfile) -> CircuitProfile {
    let factor = (GATE_BUDGET / p.gates as f64).min(1.0);
    p.scaled(factor)
}

fn circuit(p: &CircuitProfile) -> Netlist {
    let n = generate(&small(p), 1);
    if n.is_combinational() {
        n
    } else {
        full_scan(&n).into_combinational()
    }
}

fn assert_equivalent(netlist: &Netlist, tpg: TpgKind, label: &str) {
    let base = FlowConfig::new(tpg).with_tau(TAU);
    let flow = ReseedingFlow::new(netlist).expect("combinational circuit");

    // 1. byte-identical Detection Matrix
    let init1 = flow.builder().build(&base.clone().with_jobs(1));
    let init4 = flow.builder().build(&base.clone().with_jobs(4));
    assert_eq!(init1.triplets, init4.triplets, "{label}: triplets differ");
    assert_eq!(
        init1.matrix.row_major(),
        init4.matrix.row_major(),
        "{label}: Detection Matrix differs between jobs=1 and jobs=4"
    );

    // 2. identical reduction anatomy on that matrix
    let red1 = reduce(&init1.matrix, &base.solve.reducer);
    let red4 = reduce(&init4.matrix, &base.solve.reducer);
    assert_eq!(red1, red4, "{label}: reduction anatomy differs");

    // 3. identical final cover and report, end to end
    let report1 = flow.run(&base.clone().with_jobs(1));
    let report4 = flow.run(&base.clone().with_jobs(4));
    assert_eq!(report1, report4, "{label}: final report differs");
    assert!(report1.covers_all_target_faults(), "{label}: must cover F");
}

#[test]
fn every_profile_is_jobs_invariant_with_accumulator_tpg() {
    for p in all_profiles() {
        let n = circuit(&p);
        assert_equivalent(&n, TpgKind::Adder, &p.name);
    }
}

#[test]
fn every_profile_is_jobs_invariant_with_lfsr_tpg() {
    for p in all_profiles() {
        let n = circuit(&p);
        assert_equivalent(&n, TpgKind::Lfsr, &p.name);
    }
}

#[test]
fn sweep_and_gatsby_are_jobs_invariant_end_to_end() {
    // the two remaining parallel inner loops, exercised through their
    // public entry points on one representative profile
    let p = genbench_profile("mid256").unwrap();
    let n = circuit(&p);

    let taus = [0, 3, 15];
    let curve1 = tradeoff_sweep(&n, &FlowConfig::new(TpgKind::Adder).with_jobs(1), &taus).unwrap();
    let curve4 = tradeoff_sweep(&n, &FlowConfig::new(TpgKind::Adder).with_jobs(4), &taus).unwrap();
    assert_eq!(curve1, curve4, "sweep curve differs between job counts");

    let faults = FaultList::collapsed(&n);
    let g = Gatsby::new(&n).unwrap();
    let cfg = |jobs| GatsbyConfig {
        jobs,
        max_rounds: 24,
        ..GatsbyConfig::default()
    };
    let g1 = g.run(&faults, &cfg(1));
    let g4 = g.run(&faults, &cfg(4));
    assert_eq!(g1.triplets, g4.triplets, "GATSBY triplets differ");
    assert_eq!(g1.test_length, g4.test_length);
    assert_eq!(g1.covered, g4.covered);
    assert_eq!(g1.fault_sim_calls, g4.fault_sim_calls);
}
