//! The paper's specific claims, encoded as tests.

use set_covering_reseeding::prelude::*;
use set_covering_reseeding::setcover::{reduce, ReducerConfig};

/// §3.1: "Fixing τ = 0, the test set TS provided by the reseeding
/// corresponds to the ATPG test set ATPGTS."
#[test]
fn tau_zero_reproduces_atpgts() {
    let netlist = genbench_generate(&genbench_profile("tiny64").unwrap(), 7);
    let flow = ReseedingFlow::new(&netlist).unwrap();
    for kind in [
        TpgKind::Adder,
        TpgKind::Subtracter,
        TpgKind::Multiplier,
        TpgKind::Weighted,
    ] {
        let cfg = FlowConfig::new(kind).with_tau(0);
        let initial = flow.builder().build(&cfg);
        let tpg = kind.build(netlist.inputs().len());
        let expanded: Vec<BitVec> = initial
            .triplets
            .iter()
            .flat_map(|t| tpg.expand(t))
            .collect();
        assert_eq!(expanded, initial.atpg.patterns, "{kind}");
    }
}

/// §3: the initial reseeding T covers F by construction
/// (`F = ∪ F(tripletᵢ)`).
#[test]
fn initial_reseeding_covers_f_by_construction() {
    let netlist = genbench_generate(&genbench_profile("mid256").unwrap(), 1);
    let flow = ReseedingFlow::new(&netlist).unwrap();
    for tau in [0usize, 8, 31] {
        let cfg = FlowConfig::new(TpgKind::Adder).with_tau(tau);
        let initial = flow.builder().build(&cfg);
        let all: Vec<usize> = (0..initial.matrix.rows()).collect();
        assert!(initial.matrix.is_cover(&all), "τ={tau}");
    }
}

/// §3 definition: a minimal solution has no removable triplet — every
/// selected triplet detects at least one fault no other selected triplet
/// detects.
#[test]
fn minimality_no_triplet_removable() {
    let netlist = genbench_generate(&genbench_profile("tiny64").unwrap(), 4);
    let flow = ReseedingFlow::new(&netlist).unwrap();
    let cfg = FlowConfig::new(TpgKind::Adder).with_tau(31);
    let initial = flow.builder().build(&cfg);
    let report = flow.finish(&cfg, &initial);
    assert!(report.solution_optimal);

    // replay all triplets, then re-check coverage with each one removed
    let tpg = TpgKind::Adder.build(netlist.inputs().len());
    let fsim = FaultSimulator::new(&netlist).unwrap();
    let full: Vec<BitVec> = report
        .selected
        .iter()
        .flat_map(|s| tpg.expand(&s.triplet))
        .collect();
    let full_cov = fsim.detects(&full, &initial.target_faults).count_ones();
    assert_eq!(full_cov, initial.target_faults.len());
    for skip in 0..report.selected.len() {
        let partial: Vec<BitVec> = report
            .selected
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != skip)
            .flat_map(|(_, s)| tpg.expand(&s.triplet))
            .collect();
        let cov = fsim.detects(&partial, &initial.target_faults).count_ones();
        assert!(
            cov < full_cov,
            "triplet {skip} is removable — solution not minimal"
        );
    }
}

/// Figure 2: raising τ trades test length for triplet count, monotonically
/// in the triplet count.
#[test]
fn figure2_monotone_staircase() {
    let profile = genbench_profile("s1238").unwrap().scaled(0.12);
    let netlist = genbench_generate(&profile, 1);
    let curve =
        tradeoff_sweep(&netlist, &FlowConfig::new(TpgKind::Adder), &[0, 7, 31, 127]).unwrap();
    for w in curve.windows(2) {
        assert!(w[1].triplets <= w[0].triplets);
    }
    // and the extremes genuinely trade off
    let first = &curve[0];
    let last = &curve[curve.len() - 1];
    assert!(last.triplets < first.triplets, "no reduction achieved");
    assert!(last.test_length > first.test_length, "no length cost paid");
}

/// Table 2: on some instances the reduction closes the matrix entirely
/// (necessary-only solutions); essentiality must find them.
#[test]
fn reduction_can_close_matrices() {
    // the resistant cones guarantee sparse columns → essential rows
    let profile = genbench_profile("s420").unwrap().scaled(0.2);
    let netlist = genbench_generate(&profile, 1);
    let flow = ReseedingFlow::new(&netlist).unwrap();
    let cfg = FlowConfig::new(TpgKind::Adder).with_tau(31);
    let initial = flow.builder().build(&cfg);
    let reduction = reduce(&initial.matrix, &ReducerConfig::default());
    assert!(
        !reduction.essential_rows.is_empty(),
        "resistant faults must force necessary triplets"
    );
}

/// §4: the global test length accounting trims trailing patterns that do
/// not contribute; the trimmed solution still covers F.
#[test]
fn trimming_preserves_coverage() {
    let netlist = genbench_generate(&genbench_profile("mid256").unwrap(), 2);
    let flow = ReseedingFlow::new(&netlist).unwrap();
    let report = flow.run(&FlowConfig::new(TpgKind::Adder).with_tau(63));
    assert!(report.covers_all_target_faults());
    // at least one triplet should actually have been trimmed at τ=63
    assert!(
        report.selected.iter().any(|s| s.triplet.tau() < 63),
        "no trimming happened at all"
    );
}

/// The paper's motivating premise: the benchmark circuits are "not random
/// testable by 10k patterns" — deterministic ATPG must beat 10k random
/// patterns on the synthetic mimics too.
#[test]
fn mimics_are_random_pattern_resistant() {
    use rand::{rngs::StdRng, Rng, SeedableRng};
    let profile = genbench_profile("s1238").unwrap().scaled(0.25);
    let netlist = genbench_generate(&profile, 1);
    let faults = FaultList::collapsed(&netlist);
    let fsim = FaultSimulator::new(&netlist).unwrap();
    let mut rng = StdRng::seed_from_u64(3);
    let w = netlist.inputs().len();
    let random: Vec<BitVec> = (0..10_000)
        .map(|_| BitVec::random_with(w, &mut || rng.gen()))
        .collect();
    let random_cov = fsim.detects(&random, &faults).count_ones();

    let atpg = Atpg::new(&netlist).unwrap();
    let det = atpg.run(&faults, &AtpgConfig::default());
    assert!(
        det.detected.count_ones() > random_cov,
        "ATPG {} must beat 10k random {}",
        det.detected.count_ones(),
        random_cov
    );
}
