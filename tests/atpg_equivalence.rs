//! Differential suite pinning the fault-parallel ATPG engine to its
//! serial self.
//!
//! For **every** genbench profile (scaled to a small, fast gate budget —
//! the round/dictionary machinery is identical at every size), every fill
//! mode, static learning off *and* on, and `jobs ∈ {1, 4}`, the engine
//! must produce a **byte-for-byte identical** [`AtpgResult`] — patterns, detection flags, untestable and
//! aborted lists, and every statistic. This is the ATPG-level sibling of
//! the `parallel_equivalence` (flow jobs), `sparse_dense_equivalence`
//! (backend) and `batched_matrix_equivalence` (matrix engine) contracts:
//! PODEM cube generation is a pure function of the fault and every
//! don't-care fill comes from a per-fault RNG stream derived from the
//! master seed, so the worker count may only change wall-clock time,
//! never a single bit of any artefact. The `atpg` stage key excludes
//! `AtpgConfig::jobs` on the strength of exactly this suite.
//!
//! The suite also pins the outcome-reconciliation bugfix at full scale:
//! on `c880` the default configuration aborts a fault that a later
//! pattern covers fortuitously — it must be reported detected, never
//! double-counted as aborted too.

use fbist_fault::FaultList;
use fbist_genbench::{all_profiles, generate, CircuitProfile};
use fbist_netlist::Netlist;
use set_covering_reseeding::prelude::*;

/// Gate budget for the per-profile equivalence half: exercises every
/// interface shape while staying test-fast.
const GATE_BUDGET: f64 = 70.0;

fn small(p: &CircuitProfile) -> Netlist {
    let n = generate(&p.scaled((GATE_BUDGET / p.gates as f64).min(1.0)), 1);
    if n.is_combinational() {
        n
    } else {
        full_scan(&n).into_combinational()
    }
}

/// Serial vs 4-worker ATPG, byte-for-byte, across every fill mode and
/// with static learning both off and on, for one netlist — plus the
/// reconciliation invariant (no fault may be reported both given-up and
/// detected). Learning seeds every PODEM search from a database built
/// once per run, so it must not introduce any worker-count dependence.
fn assert_atpg_equivalent(netlist: &Netlist, label: &str) {
    let atpg = Atpg::new(netlist).unwrap();
    let faults = FaultList::collapsed(netlist);
    for fill in [FillMode::Random, FillMode::Zeros, FillMode::Ones] {
        for static_learning in [false, true] {
            let run = |jobs: usize| {
                atpg.run(
                    &faults,
                    &AtpgConfig {
                        jobs,
                        fill,
                        static_learning,
                        ..AtpgConfig::default()
                    },
                )
            };
            let serial = run(1);
            let parallel = run(4);
            assert_eq!(
                serial, parallel,
                "{label} fill={fill:?} learning={static_learning}: \
                 jobs=4 AtpgResult differs from serial"
            );
            for id in serial.aborted.iter().chain(&serial.untestable) {
                assert!(
                    !serial.detected.get(id.index()),
                    "{label} fill={fill:?} learning={static_learning}: \
                     fault {} double-counted",
                    id.index()
                );
            }
        }
    }
}

macro_rules! atpg_equivalence_tests {
    ($($test:ident => $profile:literal),+ $(,)?) => {$(
        mod $test {
            use super::*;

            #[test]
            fn serial_vs_parallel() {
                let p = genbench_profile($profile).expect("profile registered");
                assert_atpg_equivalent(&small(&p), $profile);
            }
        }
    )+};
}

// one module per profile so the harness runs them in parallel
atpg_equivalence_tests! {
    atpg_c499 => "c499",
    atpg_c880 => "c880",
    atpg_c1355 => "c1355",
    atpg_c1908 => "c1908",
    atpg_c7552 => "c7552",
    atpg_s420 => "s420",
    atpg_s641 => "s641",
    atpg_s820 => "s820",
    atpg_s838 => "s838",
    atpg_s953 => "s953",
    atpg_s1238 => "s1238",
    atpg_s1423 => "s1423",
    atpg_s5378 => "s5378",
    atpg_s9234 => "s9234",
    atpg_s13207 => "s13207",
    atpg_s15850 => "s15850",
    atpg_tiny64 => "tiny64",
    atpg_mid256 => "mid256",
    atpg_big3500 => "big3500",
    atpg_xl7000 => "xl7000",
}

#[test]
fn atpg_macro_covers_every_profile() {
    // fail loudly if a profile is ever added without an ATPG test
    assert_eq!(all_profiles().len(), 20, "update atpg_equivalence_tests!");
}

/// The reconciliation bugfix at full scale: default-config `c880` aborts
/// a fault that a later pattern detects fortuitously. Without the final
/// filter the fault appears in `aborted` *and* `detected`, double-counting
/// the statistics (this exact overlap is how the bug was found).
#[test]
fn c880_aborted_faults_are_reconciled_against_detections() {
    let n = generate(&genbench_profile("c880").unwrap(), 1);
    let atpg = Atpg::new(&n).unwrap();
    let faults = FaultList::collapsed(&n);
    let r = atpg.run(&faults, &AtpgConfig::default());
    assert!(!r.aborted.is_empty(), "c880 default config aborts faults");
    for id in r.aborted.iter().chain(&r.untestable) {
        assert!(
            !r.detected.get(id.index()),
            "fault {} reported aborted/untestable *and* detected",
            id.index()
        );
    }
    // the lists partition cleanly: every target fault is detected,
    // given-up, or simply uncovered — never two of those at once
    assert!(r.detected.count_ones() + r.untestable.len() + r.aborted.len() <= r.total_faults);
}
