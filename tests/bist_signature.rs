//! Full BIST datapath integration: TPG → UUT → MISR.
//!
//! The reseeding flow's detection model assumes per-pattern output
//! observation. A real BIST datapath compacts responses into a MISR
//! signature instead. These tests close the loop: the computed reseeding,
//! replayed through the TPG into the UUT with MISR compaction, must
//! distinguish the fault-free machine from faulty machines (up to the
//! provably rare aliasing).

use set_covering_reseeding::prelude::*;
use set_covering_reseeding::sim::Misr;

use set_covering_reseeding::fault::reference;

/// Computes the MISR signature of the UUT under a pattern list, with an
/// optional injected fault (naive reference simulation — independent of
/// the packed engines).
fn signature_with(
    netlist: &Netlist,
    patterns: &[BitVec],
    fault: Option<set_covering_reseeding::fault::Fault>,
    misr_width: usize,
) -> BitVec {
    let mut misr = Misr::new(misr_width);
    for p in patterns {
        let nets = reference::evaluate(netlist, p, fault);
        let mut response = BitVec::zeros(netlist.outputs().len());
        for (i, &o) in netlist.outputs().iter().enumerate() {
            response.set(i, nets[o.index()]);
        }
        misr.absorb(&response);
    }
    misr.signature().clone()
}

#[test]
fn reseeding_solution_detects_through_misr() {
    let netlist = embedded::c17();
    let flow = ReseedingFlow::new(&netlist).unwrap();
    let cfg = FlowConfig::new(TpgKind::Adder).with_tau(7);
    let initial = flow.builder().build(&cfg);
    let report = flow.finish(&cfg, &initial);
    assert!(report.covers_all_target_faults());

    // expand the solution into the BIST pattern stream
    let tpg = TpgKind::Adder.build(netlist.inputs().len());
    let mut patterns = Vec::new();
    for sel in &report.selected {
        patterns.extend(tpg.expand(&sel.triplet));
    }

    let golden = signature_with(&netlist, &patterns, None, 16);
    let mut aliased = 0usize;
    for (_, fault) in initial.target_faults.iter() {
        let sig = signature_with(&netlist, &patterns, Some(fault), 16);
        if sig == golden {
            aliased += 1;
        }
    }
    // every target fault flips some response bit; 16-bit MISR aliasing is
    // ~2^-16 per fault — zero expected over a few dozen faults
    assert_eq!(
        aliased, 0,
        "{aliased} faults aliased through the MISR signature"
    );
}

#[test]
fn fault_free_signature_is_reproducible() {
    let netlist = embedded::adder4();
    let patterns: Vec<BitVec> = (0..40u64).map(|v| BitVec::from_u64(9, v * 13)).collect();
    let a = signature_with(&netlist, &patterns, None, 12);
    let b = signature_with(&netlist, &patterns, None, 12);
    assert_eq!(a, b);
    assert!(!a.is_zero(), "non-trivial stream must leave the zero state");
}

#[test]
fn undetected_fault_means_equal_signature() {
    // a fault NOT excited by the pattern stream must produce the golden
    // signature (the MISR adds no detection power, only compaction)
    let netlist = embedded::c17();
    let g22 = netlist.find("22").unwrap();
    let fault = set_covering_reseeding::fault::Fault::stuck_at(
        set_covering_reseeding::fault::FaultSite::GateOutput(g22),
        false,
    );
    // all-zero input drives 22 to 0: stuck-at-0 unobservable on this pattern
    let patterns = vec![BitVec::zeros(5)];
    assert!(!reference::naive_detects(&netlist, fault, &patterns[0]));
    let golden = signature_with(&netlist, &patterns, None, 8);
    let faulty = signature_with(&netlist, &patterns, Some(fault), 8);
    assert_eq!(golden, faulty);
}
