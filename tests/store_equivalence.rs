//! Differential suite for the content-addressed artifact store: for
//! **every** genbench profile (scaled to a small, fast gate budget) and a
//! TPG from each family (`add`, `lfsr`), the store may only change
//! wall-clock time — never a single bit of any report:
//!
//! 1. **no-store == cold store**: attaching an empty store must not
//!    perturb the computation it caches;
//! 2. **cold == warm**: a second flow over the same store must decode the
//!    identical curve — across a *different* job count, because
//!    throughput knobs are deliberately excluded from stage keys;
//! 3. **warm is free**: the warm sweep performs **zero** matrix
//!    simulation passes and never runs ATPG (`fully_warm`).
//!
//! This is the store-level sibling of the `sweep_equivalence` (engine),
//! `parallel_equivalence` (jobs), `sparse_dense_equivalence` (backend)
//! and `batched_matrix_equivalence` (matrix engine) contracts.

use fbist_genbench::{all_profiles, generate, CircuitProfile};
use fbist_netlist::Netlist;
use set_covering_reseeding::prelude::*;

/// Gate budget for the per-profile half: exercises every interface shape
/// while staying test-fast.
const GATE_BUDGET: f64 = 70.0;

/// Deliberately unsorted, duplicated τ list — cover keys must canonicalise
/// per unique τ while the answer preserves input order.
const TAUS: [usize; 4] = [7, 0, 3, 3];

fn small(p: &CircuitProfile) -> Netlist {
    let n = generate(&p.scaled((GATE_BUDGET / p.gates as f64).min(1.0)), 1);
    if n.is_combinational() {
        n
    } else {
        full_scan(&n).into_combinational()
    }
}

fn fresh_store(label: &str) -> (ArtifactStore, std::path::PathBuf) {
    let dir =
        std::env::temp_dir().join(format!("fbist-store-equiv-{label}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    (ArtifactStore::open(&dir).expect("temp store opens"), dir)
}

fn assert_store_equivalent(netlist: &Netlist, tpg: TpgKind, label: &str) {
    let (store, dir) = fresh_store(label);

    // ground truth: no store attached
    let reference = tradeoff_sweep(netlist, &FlowConfig::new(tpg).with_jobs(1), &TAUS).unwrap();

    // cold: an empty store must not change a single bit
    let cold_flow = ReseedingFlow::with_store(netlist, store.clone()).unwrap();
    let cold = tradeoff_sweep_with(&cold_flow, &FlowConfig::new(tpg).with_jobs(1), &TAUS);
    assert_eq!(
        cold, reference,
        "{label}: cold store perturbed the computation"
    );
    assert!(
        cold_flow.builder().matrix_sim_passes() >= 1,
        "{label}: cold sweep must simulate"
    );

    // warm: a fresh flow over the same store, at a different job count
    // (throughput knobs are excluded from stage keys), decodes the same
    // curve without simulating or running ATPG at all
    let warm_flow = ReseedingFlow::with_store(netlist, store).unwrap();
    let warm = tradeoff_sweep_with(&warm_flow, &FlowConfig::new(tpg).with_jobs(4), &TAUS);
    assert_eq!(warm, reference, "{label}: warm curve differs");
    assert_eq!(
        warm_flow.builder().matrix_sim_passes(),
        0,
        "{label}: warm sweep must not simulate"
    );
    let stats = warm_flow.stages().stats();
    assert!(
        stats.fully_warm(),
        "{label}: warm sweep computed a stage: {stats:?}"
    );
    assert_eq!(stats.cover_hits, 3, "{label}: one cover hit per unique τ");

    let _ = std::fs::remove_dir_all(dir);
}

macro_rules! store_equivalence_tests {
    ($($test:ident => $profile:literal),+ $(,)?) => {$(
        mod $test {
            use super::*;

            #[test]
            fn add() {
                let p = genbench_profile($profile).expect("profile registered");
                assert_store_equivalent(&small(&p), TpgKind::Adder, $profile);
            }

            #[test]
            fn lfsr() {
                let p = genbench_profile($profile).expect("profile registered");
                assert_store_equivalent(&small(&p), TpgKind::Lfsr, $profile);
            }
        }
    )+};
}

// one module per profile so the harness runs them in parallel
store_equivalence_tests! {
    store_c499 => "c499",
    store_c880 => "c880",
    store_c1355 => "c1355",
    store_c1908 => "c1908",
    store_c7552 => "c7552",
    store_s420 => "s420",
    store_s641 => "s641",
    store_s820 => "s820",
    store_s838 => "s838",
    store_s953 => "s953",
    store_s1238 => "s1238",
    store_s1423 => "s1423",
    store_s5378 => "s5378",
    store_s9234 => "s9234",
    store_s13207 => "s13207",
    store_s15850 => "s15850",
    store_tiny64 => "tiny64",
    store_mid256 => "mid256",
    store_big3500 => "big3500",
    store_xl7000 => "xl7000",
}

#[test]
fn store_macro_covers_every_profile() {
    // fail loudly if a profile is ever added without a store test
    assert_eq!(all_profiles().len(), 20, "update store_equivalence_tests!");
}

/// Single-τ `run` and the sweep share the same cover keys: a sweep-warmed
/// store answers `run` without computing, and vice versa.
#[test]
fn run_and_sweep_share_cover_artifacts() {
    let n = small(&genbench_profile("tiny64").unwrap());
    let (store, dir) = fresh_store("run-sweep-cross");

    let sweep_flow = ReseedingFlow::with_store(&n, store.clone()).unwrap();
    let curve = tradeoff_sweep_with(&sweep_flow, &FlowConfig::new(TpgKind::Adder), &[0, 7]);

    let run_flow = ReseedingFlow::with_store(&n, store.clone()).unwrap();
    let report = run_flow.run(&FlowConfig::new(TpgKind::Adder).with_tau(7));
    assert_eq!(report, curve[1].report, "run must hit the sweep's cover");
    assert_eq!(run_flow.builder().matrix_sim_passes(), 0);
    assert!(run_flow.stages().stats().fully_warm());

    // and the other direction: a run at a new τ seeds the sweep
    let report15 = run_flow.run(&FlowConfig::new(TpgKind::Adder).with_tau(15));
    let warm_sweep = ReseedingFlow::with_store(&n, store).unwrap();
    let curve2 = tradeoff_sweep_with(&warm_sweep, &FlowConfig::new(TpgKind::Adder), &[15]);
    assert_eq!(curve2[0].report, report15);
    assert!(warm_sweep.stages().stats().fully_warm());

    let _ = std::fs::remove_dir_all(dir);
}

/// The saturating first-detection artifact: after a sweep up to τ = 15, a
/// sweep needing only smaller τ values reuses the stored matrix — no new
/// simulation pass — while a τ beyond it recomputes and overwrites.
#[test]
fn first_detection_artifact_saturates_monotonically() {
    let n = small(&genbench_profile("tiny64").unwrap());
    let (store, dir) = fresh_store("fd-saturation");
    let cfg = FlowConfig::new(TpgKind::Adder);

    let flow = ReseedingFlow::with_store(&n, store.clone()).unwrap();
    let _ = tradeoff_sweep_with(&flow, &cfg, &[0, 15]);
    assert_eq!(flow.builder().matrix_sim_passes(), 1);

    // smaller τ values: cover-cold (new keys) but matrix-warm
    let smaller = ReseedingFlow::with_store(&n, store.clone()).unwrap();
    let reference = tradeoff_sweep(&n, &cfg, &[3, 7]).unwrap();
    let got = tradeoff_sweep_with(&smaller, &cfg, &[3, 7]);
    assert_eq!(got, reference);
    assert_eq!(
        smaller.builder().matrix_sim_passes(),
        0,
        "τ ≤ stored τ_max must threshold the stored matrix, not re-simulate"
    );
    let stats = smaller.stages().stats();
    assert_eq!(stats.first_detection_hits, 1, "{stats:?}");
    assert_eq!(stats.atpg_hits, 1, "{stats:?}");

    // a larger τ forces one new pass (and only one)
    let larger = ReseedingFlow::with_store(&n, store).unwrap();
    let reference = tradeoff_sweep(&n, &cfg, &[31]).unwrap();
    let got = tradeoff_sweep_with(&larger, &cfg, &[31]);
    assert_eq!(got, reference);
    assert_eq!(larger.builder().matrix_sim_passes(), 1);

    let _ = std::fs::remove_dir_all(dir);
}

/// A corrupt artifact degrades to recomputation — same answer, a warning
/// on stderr, never an error or a wrong result.
#[test]
fn corrupt_cover_artifact_recomputes_identically() {
    let n = small(&genbench_profile("tiny64").unwrap());
    let (store, dir) = fresh_store("corrupt-degrade");
    let cfg = FlowConfig::new(TpgKind::Adder).with_tau(7);

    let flow = ReseedingFlow::with_store(&n, store.clone()).unwrap();
    let reference = flow.run(&cfg);

    // truncate the stored cover artifact in place
    let key = set_covering_reseeding::reseed::cover_stage_key(&n, &cfg);
    let path = key.path_under(store.root());
    let bytes = std::fs::read(&path).expect("cover artifact exists");
    std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();

    let recompute = ReseedingFlow::with_store(&n, store).unwrap();
    let got = recompute.run(&cfg);
    assert_eq!(got, reference, "recomputed report must be identical");
    assert_eq!(
        recompute.stages().stats().cover_misses,
        1,
        "corrupt artifact must count as a miss"
    );

    let _ = std::fs::remove_dir_all(dir);
}
